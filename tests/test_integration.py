"""End-to-end integration tests: the paper's qualitative claims at small scale.

These run real (tiny) federated training.  Only the most robust
orderings are asserted at this size — the full shape checks live in the
benchmark suite at 'bench' scale.
"""

import numpy as np
import pytest

from repro import (
    Evaluator,
    HeteFedRecConfig,
    build_method,
    load_benchmark_dataset,
    quick_run,
    train_test_split_per_user,
)
from repro.data.synthetic import SyntheticConfig


@pytest.fixture(scope="module")
def setting():
    data = load_benchmark_dataset(
        "ml", SyntheticConfig(scale=0.025, item_scale=0.08, seed=1)
    )
    clients = train_test_split_per_user(data, seed=1)
    return data, clients


def run(method, setting, epochs=6, **overrides):
    data, clients = setting
    config = HeteFedRecConfig(epochs=epochs, seed=1, eval_every=100, **overrides)
    trainer = build_method(method, data.num_items, clients, config)
    trainer.fit()
    return Evaluator(clients).evaluate(trainer.score_all_items)


class TestQualitativeOrderings:
    def test_collaboration_beats_standalone(self, setting):
        """The most robust claim in Table II: any collaborative method
        crushes Standalone."""
        federated = run("all_small", setting)
        standalone = run("standalone", setting)
        assert federated.ndcg > 2 * standalone.ndcg

    def test_hetefedrec_beats_directly_aggregate_or_close(self, setting):
        """HeteFedRec's components must not hurt relative to naive padding
        aggregation (at tiny scale we allow a small tolerance)."""
        hete = run("hetefedrec", setting)
        direct = run("directly_aggregate", setting)
        assert hete.ndcg > 0.8 * direct.ndcg

    def test_models_beat_random_scoring(self, setting):
        data, clients = setting
        result = run("all_small", setting)
        rng = np.random.default_rng(0)
        random_result = Evaluator(clients).evaluate(
            lambda c: rng.normal(size=data.num_items)
        )
        assert result.ndcg > random_result.ndcg


class TestQuickRun:
    def test_quick_run_api(self):
        result = quick_run(
            dataset="ml", method="hetefedrec", epochs=1, scale=0.015, seed=2
        )
        assert 0.0 <= result.recall <= 1.0
        assert 0.0 <= result.ndcg <= 1.0

    def test_quick_run_lightgcn(self):
        result = quick_run(
            dataset="douban", method="all_small", arch="lightgcn",
            epochs=1, scale=0.015, seed=2,
        )
        assert np.isfinite(result.ndcg)


class TestDeterminism:
    def test_same_seed_same_result(self, setting):
        a = run("hetefedrec", setting, epochs=2)
        b = run("hetefedrec", setting, epochs=2)
        assert a.ndcg == pytest.approx(b.ndcg)
        assert a.recall == pytest.approx(b.recall)
