"""The async FedBuff-style server: mirror contract and degradation policies."""

import numpy as np
import pytest

from repro.federated.trainer import FederatedConfig, FederatedTrainer
from repro.sim.async_server import AsyncFedServer, TrainerBackend
from repro.sim.config import (
    ArrivalModelConfig,
    DropoutModelConfig,
    LatencyModelConfig,
    SimulationConfig,
)


def build_trainer(tiny_dataset, tiny_clients, **overrides):
    settings = dict(epochs=2, clients_per_round=8, local_epochs=1, seed=0)
    settings.update(overrides)
    config = FederatedConfig(**settings)
    group_of = {
        c.user_id: ("s" if i % 2 else "m") for i, c in enumerate(tiny_clients)
    }
    return FederatedTrainer(tiny_dataset.num_items, tiny_clients, group_of, config)


def mirror_config(trainer) -> SimulationConfig:
    """The zero-fault configuration that must reproduce ``fit()`` exactly."""
    return SimulationConfig(
        num_clients=len(trainer.clients),
        num_items=trainer.num_items,
        epochs=trainer.config.epochs,
        clients_per_round=trainer.config.clients_per_round,
        seed=trainer.config.seed,
        arrival=ArrivalModelConfig(kind="rounds"),
        latency=LatencyModelConfig(kind="zero"),
        dropout=DropoutModelConfig(kind="none"),
    )


class TestSyncMirror:
    def test_zero_fault_run_reproduces_fit_bitwise(
        self, tiny_dataset, tiny_clients
    ):
        """The determinism contract's anchor: async server + immediate
        quorum + zero latency + no dropout == the synchronous trainer,
        bitwise — history, round count, communication meter, and every
        model parameter (via the digest)."""
        sync = build_trainer(tiny_dataset, tiny_clients)
        sync.fit()
        sync_digest = TrainerBackend(sync).digest()

        asynchronous = build_trainer(tiny_dataset, tiny_clients)
        backend = TrainerBackend(asynchronous)
        result = AsyncFedServer(backend, mirror_config(asynchronous)).run()

        assert result.param_digest == sync_digest
        assert asynchronous.history.records == sync.history.records
        assert asynchronous._round_counter == sync._round_counter
        assert asynchronous.meter.export_state() == sync.meter.export_state()
        assert result.dropped_updates == 0
        assert result.clients_unavailable == 0
        assert result.clients_simulated == len(sync.clients) * 2  # 2 epochs

    def test_mirror_is_deterministic_across_runs(
        self, tiny_dataset, tiny_clients
    ):
        digests = []
        for _ in range(2):
            trainer = build_trainer(tiny_dataset, tiny_clients)
            backend = TrainerBackend(trainer)
            result = AsyncFedServer(backend, mirror_config(trainer)).run()
            digests.append(result.param_digest)
        assert digests[0] == digests[1]

    def test_participation_source_seam(self, tiny_dataset, tiny_clients):
        """The trainer's pluggable participation source feeds both the
        sync loop and the simulator through one contract."""
        trainer = build_trainer(tiny_dataset, tiny_clients)
        fixed = [[c.user_id for c in tiny_clients[:4]]]
        trainer.participation_source = lambda t, epoch: fixed
        assert trainer.participation_rounds(1) == fixed
        assert trainer.participation_rounds(2) == fixed


class TestDeadlinePolicies:
    """Degradation behaviour under a deadline shorter than the latency."""

    def _config(self, trainer, **overrides) -> SimulationConfig:
        base = dict(
            num_clients=len(trainer.clients),
            num_items=trainer.num_items,
            epochs=1,
            clients_per_round=8,
            seed=0,
            arrival=ArrivalModelConfig(kind="rounds"),
            # Every upload takes 30 sim-seconds: far beyond any deadline,
            # so windows always close by policy, never by quorum.
            latency=LatencyModelConfig(kind="fixed", scale=30.0),
            dropout=DropoutModelConfig(kind="none"),
        )
        base.update(overrides)
        return SimulationConfig(**base)

    def test_apply_policy_closes_short(self, tiny_dataset, tiny_clients):
        trainer = build_trainer(tiny_dataset, tiny_clients, epochs=1)
        config = self._config(trainer, round_deadline=40.0, deadline_policy="apply")
        result = AsyncFedServer(TrainerBackend(trainer), config).run()
        assert result.short_rounds > 0
        assert result.rounds_extended == 0
        # Nothing is lost, only applied late/short.
        assert result.updates_aggregated == len(trainer.clients)

    def test_extend_policy_buys_time(self, tiny_dataset, tiny_clients):
        # Quorum needs two cohorts (16 > cohort size 8): the deadline
        # fires between the first and second cohort's arrivals, on a
        # half-full buffer — the extension is what saves the window.
        trainer = build_trainer(tiny_dataset, tiny_clients, epochs=1)
        config = self._config(
            trainer, quorum=16, round_deadline=30.5,
            deadline_policy="extend", max_extensions=3,
        )
        result = AsyncFedServer(TrainerBackend(trainer), config).run()
        assert result.rounds_extended > 0
        assert result.updates_aggregated == len(trainer.clients)

    def test_skip_policy_ages_and_evicts(self, tiny_dataset, tiny_clients):
        # Short deadlines + an unreachable-within-one-cohort quorum: every
        # window expires on a partial buffer, and max_age 0 means each
        # skip evicts what it was holding.
        trainer = build_trainer(tiny_dataset, tiny_clients, epochs=1)
        config = self._config(
            trainer,
            quorum=16,
            round_deadline=2.0,
            deadline_policy="skip",
            buffer_max_age_rounds=0,
        )
        result = AsyncFedServer(TrainerBackend(trainer), config).run()
        assert result.rounds_skipped > 0
        # max_age 0: every skipped window's buffer is evicted, counted.
        assert result.dropped_updates > 0
        assert (
            result.updates_aggregated + result.dropped_updates
            == len(trainer.clients)
        )

    def test_staleness_discount_changes_the_outcome(
        self, tiny_dataset, tiny_clients
    ):
        """With deadlines forcing late arrivals, ``staleness_weight < 1``
        must produce different global parameters than weight 1.0 — the
        discount is real, not cosmetic."""
        digests = {}
        for weight in (1.0, 0.5):
            trainer = build_trainer(tiny_dataset, tiny_clients, epochs=1)
            config = self._config(
                trainer,
                round_deadline=10.0,
                deadline_policy="apply",
                staleness_weight=weight,
            )
            result = AsyncFedServer(TrainerBackend(trainer), config).run()
            digests[weight] = result.param_digest
        assert digests[1.0] != digests[0.5]


class TestRetriesAndTimeouts:
    def test_timeout_exhaustion_drops_accountably(
        self, tiny_dataset, tiny_clients
    ):
        """Latency above ``upload_timeout`` on every attempt: all trained
        updates exhaust retries; none aggregate, all are accounted."""
        trainer = build_trainer(tiny_dataset, tiny_clients, epochs=1)
        config = SimulationConfig(
            num_clients=len(trainer.clients),
            num_items=trainer.num_items,
            epochs=1,
            clients_per_round=8,
            seed=0,
            latency=LatencyModelConfig(kind="fixed", scale=5.0),
            upload_timeout=1.0,
            max_retries=2,
        )
        result = AsyncFedServer(TrainerBackend(trainer), config).run()
        population = len(trainer.clients)
        assert result.dropped_updates == population
        assert result.updates_aggregated == 0
        assert result.rounds_applied == 0
        # 1 attempt + 2 retries per client, every one wasted in full.
        assert result.network.messages_dropped == 3 * population
        assert result.network.retries == 2 * population
        assert result.network.bytes_wasted > 0
        assert result.network.messages_delivered == population  # downloads only

    def test_mid_upload_drop_wastes_partial_bytes(
        self, tiny_dataset, tiny_clients
    ):
        """Every upload dies mid-flight; the fraction that reached the
        wire is charged as waste — exactly proportional to the fraction."""
        wasted = {}
        for fraction in (0.25, 1.0):
            trainer = build_trainer(tiny_dataset, tiny_clients, epochs=1)
            config = SimulationConfig(
                num_clients=len(trainer.clients),
                num_items=trainer.num_items,
                epochs=1,
                clients_per_round=8,
                seed=0,
                latency=LatencyModelConfig(kind="fixed", scale=0.5),
                dropout=DropoutModelConfig(
                    kind="bernoulli", rate=1.0,
                    drop_mid_upload_fraction=fraction,
                ),
                max_retries=0,
            )
            result = AsyncFedServer(TrainerBackend(trainer), config).run()
            assert result.dropped_updates == len(trainer.clients)
            assert result.network.messages_dropped == len(trainer.clients)
            assert result.network.bytes_up == 0.0
            wasted[fraction] = result.network.bytes_wasted
        # Same seed, same trained updates: a quarter-way drop wastes
        # exactly a quarter of what a full-transfer drop wastes.
        assert wasted[0.25] == pytest.approx(0.25 * wasted[1.0])
        assert wasted[1.0] > 0


class TestDuplicateDeliveries:
    def test_duplicates_account_and_merge(self, tiny_dataset, tiny_clients):
        trainer = build_trainer(tiny_dataset, tiny_clients, epochs=1)
        config = SimulationConfig(
            num_clients=len(trainer.clients),
            num_items=trainer.num_items,
            epochs=1,
            clients_per_round=8,
            seed=0,
            latency=LatencyModelConfig(kind="fixed", scale=0.1),
            duplicate_rate=1.0,  # every delivery is delivered twice
            duplicate_delay=0.01,
        )
        result = AsyncFedServer(TrainerBackend(trainer), config).run()
        population = len(trainer.clients)
        assert result.network.duplicates_delivered == population
        # Both copies' bytes are charged...
        assert result.network.messages_delivered == 3 * population  # down + 2 up
        # ...and the aggregation path merged every duplicate it buffered
        # together with its original.
        assert result.duplicates_merged > 0
        assert (
            result.updates_aggregated + result.duplicates_merged
            == 2 * population
        )
