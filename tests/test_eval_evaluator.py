"""Tests for the full-ranking evaluator and per-group breakdowns."""

import numpy as np
import pytest

from repro.data.dataset import ClientData
from repro.eval.evaluator import EvaluationResult, Evaluator
from repro.eval.groups import per_group_metrics


def make_client(user_id, train, valid, test):
    return ClientData(
        user_id=user_id,
        train_items=np.array(train, dtype=np.int64),
        valid_items=np.array(valid, dtype=np.int64),
        test_items=np.array(test, dtype=np.int64),
    )


@pytest.fixture()
def clients():
    return [
        make_client(0, [0, 1], [], [2]),
        make_client(1, [3], [4], [5]),
        make_client(2, [6], [], []),  # no test items → skipped
    ]


class TestEvaluator:
    def test_oracle_scores_perfect(self, clients):
        """Scoring the test item highest gives recall = ndcg = 1."""
        def oracle(client):
            scores = np.zeros(10)
            scores[client.test_items] = 1.0
            return scores

        result = Evaluator(clients, k=5).evaluate(oracle)
        assert result.recall == 1.0
        assert result.ndcg == 1.0
        assert result.evaluated_users.tolist() == [0, 1]

    def test_known_items_are_masked(self, clients):
        """Even a huge score on a train item cannot displace test items,
        because train/valid items are excluded from the ranking."""
        def adversarial(client):
            scores = np.zeros(10)
            scores[client.known_items()] = 100.0
            scores[client.test_items] = 1.0
            return scores

        result = Evaluator(clients, k=2).evaluate(adversarial)
        assert result.recall == 1.0

    def test_worst_case_scores(self, clients):
        def inverse(client):
            scores = np.ones(10)
            scores[client.test_items] = -100.0
            return scores

        result = Evaluator(clients, k=2).evaluate(inverse)
        assert result.recall == 0.0

    def test_user_subset(self, clients):
        def oracle(client):
            scores = np.zeros(10)
            scores[client.test_items] = 1.0
            return scores

        result = Evaluator(clients, k=5).evaluate(oracle, user_subset=[1])
        assert result.evaluated_users.tolist() == [1]

    def test_no_evaluable_users(self):
        lonely = [make_client(0, [1], [], [])]
        result = Evaluator(lonely).evaluate(lambda c: np.zeros(5))
        assert result.recall == 0.0
        assert result.evaluated_users.size == 0

    def test_str(self, clients):
        result = Evaluator(clients, k=7).evaluate(lambda c: np.zeros(10))
        assert "Recall@7" in str(result)


class TestPerGroupMetrics:
    def test_group_split(self, clients):
        def oracle(client):
            scores = np.zeros(10)
            if client.user_id == 0:
                scores[client.test_items] = 1.0   # user 0: perfect
            else:
                scores[client.test_items] = -1.0  # others: guaranteed miss
            return scores

        result = Evaluator(clients, k=5).evaluate(oracle)
        groups = per_group_metrics(result, {0: "s", 1: "l"})
        assert groups["s"].ndcg == 1.0
        assert groups["l"].ndcg == 0.0
        assert groups["s"].num_users == 1
        assert groups["m"].num_users == 0

    def test_unknown_users_ignored(self, clients):
        result = Evaluator(clients, k=5).evaluate(lambda c: np.zeros(10))
        groups = per_group_metrics(result, {})
        assert all(g.num_users == 0 for g in groups.values())
