"""Benchmark: poisoning quadrants — damage and recovery.

Extension bench reproducing the FedRec attack literature's protocol
against HeteFedRec: a sign-flip poisoning minority must hurt an
undefended run, and median-of-norms clipping must recover most of the
loss while costing (almost) nothing when clean.
"""

import numpy as np

from repro.experiments.ablations import format_robustness, run_robustness


def test_ablation_robustness_quadrants(benchmark, artifact):
    results = benchmark.pedantic(lambda: run_robustness("bench"), rounds=1, iterations=1)
    artifact("ablation_robustness", format_robustness(results))

    clean_u = results["clean / undefended"][1]
    clean_d = results["clean / defended"][1]
    attacked_u = results["attacked / undefended"][1]
    attacked_d = results["attacked / defended"][1]
    assert all(np.isfinite(v) for v in (clean_u, clean_d, attacked_u, attacked_d))

    # The attack does real damage without a defence...
    assert attacked_u < 0.7 * clean_u
    # ...the defence recovers a substantial part of it...
    assert attacked_d > 1.5 * attacked_u
    # ...and costs little when there is no attack.
    assert clean_d > 0.7 * clean_u
