"""Method registry: build any of the paper's seven methods by name.

The experiment harness iterates over this mapping to produce Table II;
``build_method`` is the single entry point examples and benchmarks use.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.baselines.clustered import ClusteredTrainer
from repro.baselines.direct import DirectAggregateTrainer
from repro.baselines.homogeneous import all_large, all_large_exclusive, all_small
from repro.baselines.standalone import StandaloneTrainer
from repro.core.config import HeteFedRecConfig
from repro.core.hetefedrec import HeteFedRec
from repro.data.dataset import ClientData
from repro.federated.trainer import FederatedConfig, FederatedTrainer


def _as_hete_config(config: FederatedConfig) -> HeteFedRecConfig:
    """Widen a base config into a HeteFedRec config with default components."""
    if isinstance(config, HeteFedRecConfig):
        return config
    return HeteFedRecConfig(
        arch=config.arch,
        dims=dict(config.dims),
        hidden=config.hidden,
        epochs=config.epochs,
        clients_per_round=config.clients_per_round,
        local_epochs=config.local_epochs,
        lr=config.lr,
        negative_ratio=config.negative_ratio,
        aggregation=config.aggregation,
        seed=config.seed,
        eval_every=config.eval_every,
        eval_k=config.eval_k,
        embedding_init_std=config.embedding_init_std,
    )


def _build_hetefedrec(num_items, clients, config) -> HeteFedRec:
    return HeteFedRec(num_items, clients, _as_hete_config(config))


def _build_standalone(num_items, clients, config) -> StandaloneTrainer:
    ratios = getattr(config, "ratios", (5, 3, 2))
    return StandaloneTrainer(num_items, clients, config, ratios=ratios)


def _build_clustered(num_items, clients, config) -> ClusteredTrainer:
    ratios = getattr(config, "ratios", (5, 3, 2))
    return ClusteredTrainer(num_items, clients, config, ratios=ratios)


def _build_direct(num_items, clients, config) -> DirectAggregateTrainer:
    hete = _as_hete_config(config)
    return DirectAggregateTrainer(num_items, clients, hete)


def _build_all_large_exclusive(num_items, clients, config):
    ratios = getattr(config, "ratios", (5, 3, 2))
    return all_large_exclusive(num_items, clients, config, ratios=ratios)


#: Method name → builder(num_items, clients, config) → trainer.
METHODS: Dict[str, Callable[..., FederatedTrainer]] = {
    "all_small": all_small,
    "all_large": all_large,
    "all_large_exclusive": _build_all_large_exclusive,
    "standalone": _build_standalone,
    "clustered": _build_clustered,
    "directly_aggregate": _build_direct,
    "hetefedrec": _build_hetefedrec,
}

#: Display names matching the paper's Table II rows.
DISPLAY_NAMES: Dict[str, str] = {
    "all_small": "All Small",
    "all_large": "All Large",
    "all_large_exclusive": "All Large/Exclusive",
    "standalone": "Standalone",
    "clustered": "Clustered FedRec",
    "directly_aggregate": "Directly Aggregate",
    "hetefedrec": "HeteFedRec(Ours)",
}

#: Paper ordering for Table II.
TABLE2_ORDER = (
    "all_small",
    "all_large",
    "all_large_exclusive",
    "standalone",
    "clustered",
    "directly_aggregate",
    "hetefedrec",
)


def build_method(
    name: str,
    num_items: int,
    clients: Sequence[ClientData],
    config: FederatedConfig,
) -> FederatedTrainer:
    """Instantiate a method by registry name."""
    key = name.lower()
    if key not in METHODS:
        raise KeyError(f"unknown method {name!r}; choose from {sorted(METHODS)}")
    return METHODS[key](num_items, clients, config)
