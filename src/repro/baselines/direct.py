"""Directly Aggregate baseline (paper Section V-C, Eq. 8 without Eq. 11).

Heterogeneous models with padding-based aggregation but *no* unified
dual-task learning, decorrelation or distillation: exactly the naive
scheme whose update-mismatch problem motivates HeteFedRec.  Implemented
as HeteFedRec with every component disabled, which makes the Table IV
equivalence (−RESKD,DDR,UDL ≡ Directly Aggregate) true by construction.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.config import HeteFedRecConfig
from repro.core.hetefedrec import HeteFedRec
from repro.data.dataset import ClientData
from repro.federated.trainer import FederatedConfig


class DirectAggregateTrainer(HeteFedRec):
    """Padding aggregation of mismatched updates — all components off."""

    method_name = "directly_aggregate"

    def __init__(
        self,
        num_items: int,
        clients: Sequence[ClientData],
        config: FederatedConfig,
        group_of: Optional[Mapping[int, str]] = None,
    ) -> None:
        if not isinstance(config, HeteFedRecConfig):
            config = HeteFedRecConfig(
                **{
                    field: getattr(config, field)
                    for field in (
                        "arch",
                        "dims",
                        "hidden",
                        "epochs",
                        "clients_per_round",
                        "local_epochs",
                        "lr",
                        "negative_ratio",
                        "aggregation",
                        "seed",
                        "eval_every",
                        "eval_k",
                        "embedding_init_std",
                    )
                }
            )
        config = config.copy_with(
            enable_udl=False, enable_ddr=False, enable_reskd=False
        )
        super().__init__(num_items, clients, config, group_of=group_of)
