"""Server-side optimisers: FedAvgM, FedAdam, FedYogi (Reddi et al., 2021).

The paper applies aggregated deltas directly (its Eq. 4/9/15 with the
shared learning rate folded into local training).  The adaptive federated
optimisation line of work treats the aggregated delta as a
*pseudo-gradient* and feeds it through a server optimiser instead; this
module implements the three standard choices as drop-in alternatives so
their effect on HeteFedRec can be measured (see the server-optimiser
ablation bench).

State is keyed by parameter name, so a single :class:`ServerOptimizer`
instance serves every group's item table and every Θ head at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass
class ServerOptimizerConfig:
    """Server-update rule and its hyper-parameters.

    ``kind``:
        'sgd' (plain scaling — identical to the paper's rule at
        ``lr=1``), 'fedavgm' (server momentum), 'fedadam' or 'fedyogi'
        (adaptive; ``eps`` follows the large defaults of the FedOpt
        paper, not Adam's 1e-8, because pseudo-gradients are large).
    """

    kind: str = "fedavgm"
    lr: float = 1.0
    momentum: float = 0.9
    beta1: float = 0.9
    beta2: float = 0.99
    eps: float = 1e-3

    _KINDS = ("sgd", "fedavgm", "fedadam", "fedyogi")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"kind must be one of {self._KINDS}, got {self.kind!r}")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")
        for name, beta in (("beta1", self.beta1), ("beta2", self.beta2)):
            if not 0.0 <= beta < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {beta}")


class ServerOptimizer:
    """Transforms aggregated deltas into parameter steps, with state."""

    def __init__(self, config: ServerOptimizerConfig) -> None:
        self.config = config
        self._momentum: Dict[str, np.ndarray] = {}
        self._second: Dict[str, np.ndarray] = {}

    def step(self, key: str, delta: np.ndarray) -> np.ndarray:
        """The step to *add* to the parameter named ``key``.

        ``delta`` is the aggregated client movement for this round (the
        pseudo-gradient, already pointing downhill).
        """
        cfg = self.config
        if cfg.kind == "sgd":
            return cfg.lr * delta

        if cfg.kind == "fedavgm":
            buffer = self._momentum.get(key)
            if buffer is None or buffer.shape != delta.shape:
                buffer = np.zeros_like(delta)
            buffer = cfg.momentum * buffer + delta
            self._momentum[key] = buffer
            return cfg.lr * buffer

        # FedAdam / FedYogi share the first moment and differ in the second.
        m = self._momentum.get(key)
        if m is None or m.shape != delta.shape:
            m = np.zeros_like(delta)
        v = self._second.get(key)
        if v is None or v.shape != delta.shape:
            v = np.zeros_like(delta)

        m = cfg.beta1 * m + (1.0 - cfg.beta1) * delta
        squared = delta**2
        if cfg.kind == "fedadam":
            v = cfg.beta2 * v + (1.0 - cfg.beta2) * squared
        else:  # fedyogi — additive, sign-controlled second-moment update
            v = v - (1.0 - cfg.beta2) * squared * np.sign(v - squared)
        self._momentum[key] = m
        self._second[key] = v
        return cfg.lr * m / (np.sqrt(v) + cfg.eps)

    def reset(self) -> None:
        self._momentum.clear()
        self._second.clear()

    # ------------------------------------------------------------------
    # Checkpointing: the moments ARE the optimiser, so a resumed run must
    # carry them — restarting them at zero silently changes every
    # subsequent adaptive step.
    # ------------------------------------------------------------------
    def export_moments(self) -> "tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]":
        """Copies of the per-parameter first/second moment buffers."""
        return (
            {key: buf.copy() for key, buf in self._momentum.items()},
            {key: buf.copy() for key, buf in self._second.items()},
        )

    def load_moments(
        self,
        momentum: Dict[str, np.ndarray],
        second: Dict[str, np.ndarray],
    ) -> None:
        """Replace all moment state with checkpointed buffers."""
        self._momentum = {key: np.array(buf) for key, buf in momentum.items()}
        self._second = {key: np.array(buf) for key, buf in second.items()}

    def state_norms(self) -> Dict[str, float]:
        """L2 norm of each momentum buffer (diagnostics / tests)."""
        return {key: float(np.linalg.norm(buf)) for key, buf in self._momentum.items()}
