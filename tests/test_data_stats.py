"""Tests for dataset statistics (Table I / Fig. 1 machinery)."""

import numpy as np
import pytest

from repro.data.dataset import InteractionDataset
from repro.data.stats import (
    dataset_statistics,
    interaction_histogram,
    tail_heaviness,
)


class TestDatasetStatistics:
    def test_exact_values(self, handmade_dataset):
        stats = dataset_statistics(handmade_dataset)
        counts = np.array([8, 6, 4, 3, 2, 1], dtype=float)
        assert stats.users == 6
        assert stats.items == 10
        assert stats.interactions == 24
        assert stats.avg == pytest.approx(counts.mean())
        assert stats.q50 == pytest.approx(np.percentile(counts, 50))
        assert stats.q80 == pytest.approx(np.percentile(counts, 80))
        assert stats.std == pytest.approx(counts.std())
        assert stats.cv == pytest.approx(counts.std() / counts.mean())

    def test_as_row(self, handmade_dataset):
        row = dataset_statistics(handmade_dataset).as_row()
        assert row[0] == "handmade"
        assert row[1] == 6

    def test_empty_dataset(self):
        ds = InteractionDataset(0, 5, [])
        stats = dataset_statistics(ds)
        assert stats.avg == 0.0


class TestHistogram:
    def test_counts_sum_to_users(self, handmade_dataset):
        _, hist = interaction_histogram(handmade_dataset, bins=4)
        assert hist.sum() == handmade_dataset.num_users

    def test_edges_monotonic(self, handmade_dataset):
        edges, _ = interaction_histogram(handmade_dataset, bins=5)
        assert np.all(np.diff(edges) > 0)


class TestTailHeaviness:
    def test_uniform_counts_near_half(self):
        ds = InteractionDataset(4, 10, [np.arange(5)] * 4)
        # All users identical → none strictly below the mean.
        assert tail_heaviness(ds) == 0.0

    def test_skewed_counts_above_half(self):
        user_items = [np.arange(1)] * 9 + [np.arange(9)]
        ds = InteractionDataset(10, 10, user_items)
        assert tail_heaviness(ds) == 0.9
