"""Smoke tests for the documented example entry points.

The examples are the repo's public API walkthroughs; running them here
(at tiny synthetic scale, via the same ``python examples/<name>.py``
command the docs give) pins them to the API so a rename or signature
change cannot silently strand the documentation.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        cwd=str(REPO_ROOT),
    )


@pytest.mark.parametrize(
    "name,args,expected",
    [
        (
            "quickstart.py",
            ("--scale", "0.008", "--epochs", "1"),
            "HeteFedRec final",
        ),
        (
            "heterogeneous_movielens.py",
            ("--scale", "0.008", "--epochs", "1"),
            "Overall comparison",
        ),
        (
            "deployment_lifecycle.py",
            ("--scale", "0.008", "--epochs", "2"),
            "hot-swapped",
        ),
        (
            "serving_resilience.py",
            ("--scale", "0.008", "--epochs", "1"),
            "recovered: health=healthy",
        ),
    ],
)
def test_example_runs_at_tiny_scale(name, args, expected):
    result = run_example(name, *args)
    assert result.returncode == 0, (
        f"{name} failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert expected in result.stdout
