"""Benchmark: base-model generality — NCF, LightGCN, and the GMF extension.

The paper's generality claim (Section V, 'two commonly used base
recommendation models') extended with GMF: HeteFedRec should beat the
strongest homogeneous baseline under *every* architecture.
"""

import numpy as np

from repro.experiments.ablations import format_arch_comparison, run_arch_comparison


def test_ablation_arch_comparison(benchmark, artifact):
    results = benchmark.pedantic(
        lambda: run_arch_comparison("bench"), rounds=1, iterations=1
    )
    artifact("ablation_arch", format_arch_comparison(results))

    for arch, methods in results.items():
        for method, result in methods.items():
            assert np.isfinite(result.ndcg), (arch, method)
        # Heterogeneous training stays within a band of the strongest
        # homogeneous baseline under every scoring family.
        assert (
            methods["hetefedrec"].ndcg >= 0.7 * methods["all_small"].ndcg
        ), arch
    # ...and wins outright under the paper's headline base model (NCF).
    assert results["ncf"]["hetefedrec"].ndcg > results["ncf"]["all_small"].ndcg
