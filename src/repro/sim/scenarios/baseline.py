"""No-fault control: synchronous schedule, instant uploads.

Every other scenario's counters read against this one: zero drops, zero
retries, zero unavailable clients, every cohort applied at quorum.
"""

from __future__ import annotations

from repro.sim.config import SimulationConfig


NAME = "baseline"


def build(base: SimulationConfig):
    from repro.sim.scenarios import ScenarioSpec

    config = base.copy_with(
        arrival=base.arrival.__class__(kind="rounds"),
        latency=base.latency.__class__(kind="zero"),
        dropout=base.dropout.__class__(kind="none"),
        duplicate_rate=0.0,
    )
    return ScenarioSpec(NAME, config)
