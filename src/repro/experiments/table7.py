"""Table VII — impact of the model-size setting (RQ5).

Sweeps {N_s, N_m, N_l} over {2,4,8}, {8,16,32} and {32,64,128} on one
dataset, comparing All Small, All Large and HeteFedRec under each — the
paper's evidence that HeteFedRec wins when the size range brackets the
data's sweet spot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.profiles import ExperimentProfile
from repro.experiments.reporting import format_table
from repro.experiments.runner import RunResult, RunSpec, run_grid

SIZE_SETTINGS: Tuple[Tuple[str, dict], ...] = (
    ("{2,4,8}", {"s": 2, "m": 4, "l": 8}),
    ("{8,16,32}", {"s": 8, "m": 16, "l": 32}),
    ("{32,64,128}", {"s": 32, "m": 64, "l": 128}),
)

METHODS = ("all_small", "all_large", "hetefedrec")


def _size_spec(
    dataset: str, method: str, arch: str, profile, seed: int, dims: dict
) -> RunSpec:
    return RunSpec(
        dataset,
        method,
        arch=arch,
        profile=profile,
        seed=seed,
        config_overrides={"dims": dims},
    )


def table7_specs(
    profile: str | ExperimentProfile = "bench",
    dataset: str = "ml",
    archs: Sequence[str] = ("ncf", "lightgcn"),
    seed: int = 0,
) -> List[RunSpec]:
    """The model-size sweep as run specs."""
    return [
        _size_spec(dataset, method, arch, profile, seed, dims)
        for arch in archs
        for _, dims in SIZE_SETTINGS
        for method in METHODS
    ]


def run_table7(
    profile: str | ExperimentProfile = "bench",
    dataset: str = "ml",
    archs: Sequence[str] = ("ncf", "lightgcn"),
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, RunResult]]]:
    """``results[arch][setting_label][method]`` (NDCG is the paper's metric)."""
    grid = run_grid(table7_specs(profile, dataset, archs, seed), jobs=jobs)
    return {
        arch: {
            label: {
                method: grid[_size_spec(dataset, method, arch, profile, seed, dims)]
                for method in METHODS
            }
            for label, dims in SIZE_SETTINGS
        }
        for arch in archs
    }


def format_table7(results: Dict[str, Dict[str, Dict[str, RunResult]]]) -> str:
    blocks: List[str] = []
    labels = [label for label, _ in SIZE_SETTINGS]
    for arch, per_setting in results.items():
        headers = ["Method"] + labels
        rows = []
        for method in METHODS:
            display = {
                "all_small": "All Small",
                "all_large": "All Large",
                "hetefedrec": "HeteFedRec",
            }[method]
            rows.append([display] + [per_setting[label][method].ndcg for label in labels])
        blocks.append(
            format_table(
                headers,
                rows,
                title=f"Table VII ({arch} on ml): NDCG@20 by model-size setting",
            )
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(format_table7(run_table7()))
