"""Tests for the functional helpers (mse, column standardisation)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import functional as F


class TestMSE:
    def test_zero_for_exact_match(self):
        pred = Tensor([1.0, 2.0])
        assert float(F.mse(pred, [1.0, 2.0]).data) == 0.0

    def test_value(self):
        pred = Tensor([0.0, 0.0])
        assert float(F.mse(pred, [2.0, 0.0]).data) == pytest.approx(2.0)

    def test_gradient(self):
        pred = Tensor([0.0, 0.0], requires_grad=True)
        assert gradcheck(lambda p: F.mse(p, [1.0, -1.0]), [pred])


class TestStandardizeColumns:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(3.0, 2.5, size=(200, 4)))
        z = F.standardize_columns(x).data
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(z.var(axis=0), 1.0, atol=1e-4)

    def test_constant_column_is_stable(self):
        x = Tensor(np.ones((10, 2)))
        z = F.standardize_columns(x).data
        assert np.all(np.isfinite(z))
        assert np.allclose(z, 0.0)

    def test_differentiable(self):
        x = Tensor(np.random.default_rng(1).normal(size=(5, 3)), requires_grad=True)
        assert gradcheck(lambda x: (F.standardize_columns(x) ** 3).sum(), [x])


class TestReexports:
    def test_functional_namespace_is_complete(self):
        for name in (
            "bce_with_logits",
            "cosine_similarity_matrix",
            "l2_normalize",
            "log_sigmoid",
            "concat",
            "frobenius_norm",
        ):
            assert callable(getattr(F, name))
