"""Malicious-client update transformations (the FedRec threat model).

Each attack is a pure function over a :class:`ClientUpdate` — exactly
the capability the threat model grants: a malicious participant controls
what it uploads, nothing else.  Three behaviours from the literature:

* ``noise`` — untargeted availability attack: upload Gaussian garbage
  scaled to drown honest updates;
* ``signflip`` — model poisoning: upload the *negated*, amplified honest
  update, steering the global model away from the optimum (the
  strongest untargeted baseline in FedRecAttack [45]);
* ``promote`` — targeted item promotion (PipAttack [44]): craft the
  target item's embedding delta so the item scores highly for everyone.
  The crafted row moves the target's embedding toward the centroid of
  the items the attacker's own user actually liked — a popularity
  mimicry that needs no extra knowledge beyond the attacker's device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Set

import numpy as np

from repro.data.dataset import ClientData
from repro.federated.payload import ClientUpdate, SparseRowDelta, touched_rows

_KINDS = ("noise", "signflip", "promote")


@dataclass
class AttackConfig:
    """Who attacks and how.

    ``fraction`` of clients are malicious (chosen uniformly at random,
    per PipAttack's setting of injected/compromised users).  ``scale``
    amplifies the poisoned payload; ``target_item`` is only used by the
    ``promote`` attack.
    """

    kind: str = "signflip"
    fraction: float = 0.1
    scale: float = 10.0
    target_item: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.target_item < 0:
            raise ValueError(f"target_item must be non-negative, got {self.target_item}")


def choose_malicious(
    clients: Sequence[ClientData], fraction: float, seed: int = 0
) -> Set[int]:
    """The malicious sub-population: a uniform ``fraction`` of all clients."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    count = int(round(len(clients) * fraction))
    if count == 0:
        return set()
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(clients), size=count, replace=False)
    return {int(clients[i].user_id) for i in chosen}


def _noise_like(update: ClientUpdate, scale: float, rng: np.random.Generator) -> ClientUpdate:
    """Replace every uploaded block with scaled Gaussian noise.

    The upload's sparse/dense form is preserved: a sparse honest update
    becomes sparse garbage over the *same* touched rows (the attacker
    controls its payload values, not its wire format, and an upload
    suddenly spanning the whole catalogue would be trivially
    fingerprintable server-side).  σ is referenced to the std of the
    uploaded block — for sparse uploads that is the touched-row values,
    not a catalogue-wide std diluted by structural zeros.
    """
    delta = update.embedding_delta
    if isinstance(delta, SparseRowDelta):
        reference = float(np.std(delta.values)) if delta.values.size else 1.0
        sigma = scale * (reference or 1.0)
        poisoned = SparseRowDelta(
            delta.num_rows,
            delta.rows.copy(),
            rng.normal(0.0, sigma, size=delta.values.shape),
        )
    else:
        reference = float(np.std(delta)) or 1.0
        sigma = scale * reference
        poisoned = rng.normal(0.0, sigma, size=delta.shape)
    return ClientUpdate(
        user_id=update.user_id,
        group=update.group,
        embedding_delta=poisoned,
        head_deltas={
            head_group: {
                name: rng.normal(0.0, sigma, size=values.shape)
                for name, values in state.items()
            }
            for head_group, state in update.head_deltas.items()
        },
        num_examples=update.num_examples,
        train_loss=update.train_loss,
    )


def _promote_target(
    update: ClientUpdate, target_item: int, scale: float
) -> ClientUpdate:
    """Craft the target item's row to mimic the client's liked items.

    The attacker moves the target's embedding toward the centroid of the
    rows its honest training actually strengthened, amplified by
    ``scale`` — after aggregation the target looks like a universally
    liked item.  A sparse upload stays sparse: the crafted row joins the
    touched-row set (the target is one more "interacted" item).
    """
    delta = update.embedding_delta
    if isinstance(delta, SparseRowDelta):
        values = delta.values
        support_pos = touched_rows(values)
        support_pos = support_pos[delta.rows[support_pos] != target_item]
        width = delta.width
        if support_pos.size:
            centroid = values[support_pos].mean(axis=0)
            norm = float(np.linalg.norm(centroid))
            direction = centroid / norm if norm > 0 else np.ones(width) / np.sqrt(width)
        else:
            direction = np.ones(width) / np.sqrt(width)
        row_norms = np.linalg.norm(values, axis=1)
        typical = float(row_norms[row_norms > 0].mean()) if np.any(row_norms > 0) else 1.0
        if target_item < delta.num_rows:
            crafted = SparseRowDelta(
                delta.num_rows,
                np.array([target_item], dtype=np.int64),
                np.zeros((1, width), dtype=values.dtype),
            )
            merged = delta + crafted  # ensures the target row exists
            merged.values[np.searchsorted(merged.rows, target_item)] = (
                scale * typical * direction
            )
            poisoned = merged
        else:
            poisoned = delta.copy()
        return ClientUpdate(
            user_id=update.user_id,
            group=update.group,
            embedding_delta=poisoned,
            head_deltas=update.head_deltas,
            num_examples=update.num_examples,
            train_loss=update.train_loss,
        )

    delta = delta.copy()
    support = touched_rows(delta)
    support = support[support != target_item]
    if support.size:
        centroid = delta[support].mean(axis=0)
        norm = float(np.linalg.norm(centroid))
        direction = centroid / norm if norm > 0 else np.ones(delta.shape[1]) / np.sqrt(delta.shape[1])
    else:
        direction = np.ones(delta.shape[1]) / np.sqrt(delta.shape[1])
    row_norms = np.linalg.norm(delta, axis=1)
    typical = float(row_norms[row_norms > 0].mean()) if np.any(row_norms > 0) else 1.0
    if target_item < delta.shape[0]:
        delta[target_item] = scale * typical * direction
    return ClientUpdate(
        user_id=update.user_id,
        group=update.group,
        embedding_delta=delta,
        head_deltas=update.head_deltas,
        num_examples=update.num_examples,
        train_loss=update.train_loss,
    )


def poison_update(
    update: ClientUpdate, config: AttackConfig, rng: np.random.Generator
) -> ClientUpdate:
    """Apply the configured attack to one honest update."""
    if config.kind == "noise":
        return _noise_like(update, config.scale, rng)
    if config.kind == "signflip":
        return update.scaled(-config.scale)
    return _promote_target(update, config.target_item, config.scale)
