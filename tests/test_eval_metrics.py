"""Tests for Recall@K / NDCG@K and the ranking helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import ndcg_at_k, rank_items, recall_at_k


class TestRankItems:
    def test_descending_order(self):
        ranked = rank_items(np.array([0.1, 0.9, 0.5]))
        assert ranked.tolist() == [1, 2, 0]

    def test_exclusion_masks_items(self):
        ranked = rank_items(np.array([0.1, 0.9, 0.5]), exclude=np.array([1]))
        assert ranked[0] == 2
        assert ranked.tolist()[-1] == 1  # masked to -inf, sinks to bottom

    def test_truncation(self):
        ranked = rank_items(np.arange(10.0), k=3)
        assert ranked.tolist() == [9, 8, 7]

    def test_does_not_mutate_input(self):
        scores = np.array([0.1, 0.9])
        rank_items(scores, exclude=np.array([1]))
        assert scores[1] == 0.9

    def test_stable_ties(self):
        ranked = rank_items(np.zeros(4))
        assert ranked.tolist() == [0, 1, 2, 3]


class TestRecall:
    def test_perfect(self):
        assert recall_at_k([1, 2, 3], [1, 2, 3], k=3) == 1.0

    def test_partial(self):
        assert recall_at_k([1, 9, 8], [1, 2], k=3) == 0.5

    def test_miss(self):
        assert recall_at_k([7, 8, 9], [1], k=3) == 0.0

    def test_empty_relevant(self):
        assert recall_at_k([1, 2], [], k=2) == 0.0

    def test_k_cutoff(self):
        # Relevant item at position 3 does not count for k=2.
        assert recall_at_k([9, 8, 1], [1], k=2) == 0.0

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=30, unique=True),
        st.sets(st.integers(0, 50), min_size=1, max_size=10),
        st.integers(1, 30),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, ranked, relevant, k):
        value = recall_at_k(ranked, relevant, k=k)
        assert 0.0 <= value <= 1.0


class TestNDCG:
    def test_perfect_ranking_is_one(self):
        assert ndcg_at_k([5, 3], [5, 3], k=2) == pytest.approx(1.0)

    def test_position_discount(self):
        # One relevant item at rank 1 vs rank 2.
        first = ndcg_at_k([5, 0], [5], k=2)
        second = ndcg_at_k([0, 5], [5], k=2)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(np.log(2) / np.log(3))
        assert first > second

    def test_hand_computed_case(self):
        # Relevant {a, b}; ranking hits a at pos 0, b at pos 2.
        ranked = ["a", "x", "b"]
        relevant = ["a", "b"]
        dcg = 1 / np.log2(2) + 1 / np.log2(4)
        idcg = 1 / np.log2(2) + 1 / np.log2(3)
        # item ids are ints in the real system; strings work via int()... use ints
        ranked = [0, 7, 1]
        relevant = [0, 1]
        assert ndcg_at_k(ranked, relevant, k=3) == pytest.approx(dcg / idcg)

    def test_empty_relevant(self):
        assert ndcg_at_k([1], [], k=5) == 0.0

    def test_idcg_caps_at_k(self):
        # More relevant items than K: perfect top-K still scores 1.
        assert ndcg_at_k([0, 1], [0, 1, 2, 3], k=2) == pytest.approx(1.0)

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=30, unique=True),
        st.sets(st.integers(0, 50), min_size=1, max_size=10),
        st.integers(1, 30),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_and_consistency(self, ranked, relevant, k):
        value = ndcg_at_k(ranked, relevant, k=k)
        assert 0.0 <= value <= 1.0 + 1e-12
        # NDCG positive iff recall positive.
        assert (value > 0) == (recall_at_k(ranked, relevant, k=k) > 0)


class TestTopKWithNaN:
    """NaN scores (diverged models) must rank last, as the historical
    full stable argsort did, in both partial and blocked top-k."""

    def test_partial_top_k_nan_matches_argsort(self):
        from repro.eval.metrics import partial_top_k

        scores = np.array([1.0, np.nan, 3.0, np.nan, 2.0])
        for k in (1, 2, 3, 5):
            expect = np.argsort(-scores, kind="stable")[:k]
            assert np.array_equal(partial_top_k(scores, k), expect), k

    def test_blocked_top_k_nan_rows(self):
        from repro.eval.metrics import blocked_top_k

        scores = np.array(
            [[1.0, np.nan, 3.0, 0.0], [4.0, 2.0, 1.0, 3.0]]
        )
        expect = np.stack(
            [np.argsort(-row, kind="stable")[:2] for row in scores]
        )
        assert np.array_equal(blocked_top_k(scores, 2), expect)

    def test_rank_items_all_nan(self):
        from repro.eval.metrics import rank_items

        scores = np.full(4, np.nan)
        ranked = rank_items(scores, k=2)
        assert ranked.size == 2
