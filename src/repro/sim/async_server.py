"""FedBuff-style asynchronous server over the discrete-event engine.

:class:`AsyncFedServer` generalises the synchronous trainer's
:class:`~repro.federated.availability.StragglerBuffer` into real
buffered aggregation: uploads arrive whenever the network delivers
them, land in the buffer scaled by a *per-update* staleness discount
(``staleness_weight ** (server_version - version_trained_at)``), and an
aggregation window closes when ``quorum`` uploads are buffered — or
when its deadline expires, at which point an explicit policy decides
between applying short (``apply``), extending the deadline once or more
(``extend``), and carrying the buffer into the next window (``skip``,
with max-age eviction so stale updates are dropped *accountably*).

Synchronous-mirror contract
---------------------------
With ``arrival.kind="rounds"``, zero latency, no dropout and
``quorum == clients_per_round``, the event order degenerates to the
synchronous schedule: every cohort trains as one batch against the same
snapshot, uploads arrive in dispatch order with staleness 0 (weight
exactly 1.0 — updates are buffered untouched), and each window closes
exactly at its cohort boundary.  Driving a real
:class:`~repro.federated.trainer.FederatedTrainer` through
:class:`TrainerBackend` then reproduces ``fit()``'s history and final
parameters bitwise — the equivalence test the determinism contract
hangs off.
"""

from __future__ import annotations

import hashlib
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.federated.availability import StragglerBuffer, merge_duplicate_users
from repro.federated.communication import head_parameter_count
from repro.sim.config import APPLY, EXTEND, SKIP, ScenarioResult, SimulationConfig
from repro.sim.engine import DEADLINE, DISPATCH, UPLOAD, EventQueue, build_models


class TrainerBackend:
    """Drive a real federated trainer from the simulator.

    Participation comes from the trainer's own
    :meth:`~repro.federated.trainer.FederatedTrainer.participation_rounds`
    (consuming the same permutation RNG the synchronous loop would), so
    the zero-fault configuration replays the paper's schedule exactly.
    """

    def __init__(self, trainer) -> None:
        self.trainer = trainer

    @property
    def num_clients(self) -> int:
        return len(self.trainer.clients)

    def participation_rounds(self, epoch: int) -> List[List[int]]:
        return self.trainer.participation_rounds(epoch)

    def train(self, users: Sequence[int], version: int) -> list:
        return self.trainer._train_clients(list(users))

    def apply(self, updates: Sequence) -> None:
        self.trainer.apply_updates(list(updates))

    def end_epoch(self, epoch: int, losses: Sequence[float]) -> None:
        trainer = self.trainer
        trainer.post_aggregate(epoch)
        epsilon = delta = None
        spent = trainer.privacy_spent()
        if spent is not None:
            epsilon, delta = spent.epsilon, spent.delta
        trainer.history.log(
            epoch, float(np.mean(losses)) if len(losses) else 0.0,
            epsilon=epsilon, delta=delta,
        )
        trainer._epochs_done = epoch

    def download_size(self, user_id: int) -> float:
        trainer = self.trainer
        group = trainer.group_of[user_id]
        size = trainer.num_items * trainer.config.dims[group]
        for head_group in trainer.trained_head_groups(group):
            size += head_parameter_count(
                trainer.config.dims[head_group], trainer.config.hidden
            )
        return float(size)

    def digest(self) -> str:
        """SHA-256 over every public parameter and private embedding."""
        trainer = self.trainer
        digest = hashlib.sha256()
        for group in trainer.groups:
            model = trainer.models[group]
            digest.update(f"V:{group}".encode())
            digest.update(np.ascontiguousarray(model.item_embedding.weight.data).tobytes())
            for name, values in sorted(model.head.state_dict().items()):
                digest.update(f"Theta:{group}:{name}".encode())
                digest.update(np.ascontiguousarray(values).tobytes())
        for user_id in sorted(trainer.runtimes):
            digest.update(f"u:{user_id}".encode())
            digest.update(
                np.ascontiguousarray(trainer.runtimes[user_id].user_embedding).tobytes()
            )
        return digest.hexdigest()

    def close(self) -> None:  # lifecycle parity with the surrogate fleet
        pass


class AsyncFedServer:
    """Event-driven buffered-aggregation server over any backend."""

    def __init__(
        self,
        backend,
        config: SimulationConfig,
        name: str = "scenario",
        streams=None,
    ) -> None:
        self.backend = backend
        self.config = config
        self.streams, self._arrival, self._latency, self._dropout = build_models(
            config, streams
        )
        # staleness_weight is applied per add (computed from observed
        # staleness); the buffer's own default never fires.
        self._buffer = StragglerBuffer(
            staleness_weight=1.0, max_age_rounds=config.buffer_max_age_rounds
        )
        self.version = 0
        self.now = 0.0
        self._window_id = 0
        self._window_extensions = 0
        self._inflight = 0
        self.result = ScenarioResult(name=name)
        self._epoch_losses: List[float] = []

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        started = time.perf_counter()
        for epoch in range(1, self.config.epochs + 1):
            self._run_epoch(epoch)
        result = self.result
        result.sim_time = self.now
        result.mean_final_loss = (
            float(np.mean(self._epoch_losses)) if self._epoch_losses else 0.0
        )
        result.param_digest = self.backend.digest()
        result.wall_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Epoch loop
    # ------------------------------------------------------------------
    def _run_epoch(self, epoch: int) -> None:
        queue = EventQueue()
        cohorts = self.backend.participation_rounds(epoch)
        for when, cohort in self._arrival.schedule(self.now, cohorts):
            queue.push(when, DISPATCH, users=cohort)
            self._inflight += 1
        self._open_window(queue)
        self._epoch_losses = []

        while queue:
            event = queue.pop()
            self.now = max(self.now, event.time)
            if event.kind == DISPATCH:
                self._inflight -= 1
                self._handle_dispatch(queue, event)
            elif event.kind == UPLOAD:
                self._inflight -= 1
                self._handle_upload(queue, event)
            else:
                self._handle_deadline(queue, event)

        # Epoch drained: every upload resolved one way or the other.  A
        # non-empty buffer is a window that could not reach quorum —
        # apply it short rather than lose trained work silently.
        if len(self._buffer):
            self._close_round(queue, short=True)
        self.result.events_processed += queue.events_processed
        self.backend.end_epoch(epoch, self._epoch_losses)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_dispatch(self, queue: EventQueue, event) -> None:
        available: List[int] = []
        for user in event.payload["users"]:
            if self._dropout.check_available(user):
                available.append(user)
            else:
                self.result.clients_unavailable += 1
        if not available:
            return
        updates = self.backend.train(available, self.version)
        self.result.clients_simulated += len(available)
        self._epoch_losses.extend(float(u.train_loss) for u in updates)
        for update in updates:
            self.result.network.record_download(
                self.backend.download_size(update.user_id)
            )
            self._schedule_upload(queue, update, attempt=0)

    def _schedule_upload(self, queue: EventQueue, update, attempt: int,
                         extra_delay: float = 0.0) -> None:
        cfg = self.config
        latency = self._latency.sample()
        if latency > cfg.upload_timeout:
            # The server gives up at the timeout; whatever the client
            # sent is wasted and the client retries after backoff.
            queue.push(
                self.now + extra_delay + cfg.upload_timeout, UPLOAD,
                update=update, version=self.version, attempt=attempt,
                failed="timeout", latency=latency,
            )
        elif self._dropout.upload_drops():
            fraction = cfg.dropout.drop_mid_upload_fraction
            queue.push(
                self.now + extra_delay + latency * fraction, UPLOAD,
                update=update, version=self.version, attempt=attempt,
                failed="drop", latency=latency,
            )
        else:
            queue.push(
                self.now + extra_delay + latency, UPLOAD,
                update=update, version=self.version, attempt=attempt,
                failed=None, latency=latency,
            )
        self._inflight += 1

    def _handle_upload(self, queue: EventQueue, event) -> None:
        cfg = self.config
        payload = event.payload
        update = payload["update"]
        attempt = payload["attempt"]
        failed = payload["failed"]
        is_retry = attempt > 0

        if failed is not None:
            wasted = float(update.upload_size)
            if failed == "drop":
                wasted *= cfg.dropout.drop_mid_upload_fraction
            self.result.network.record_drop(wasted, retry=is_retry)
            if attempt < cfg.max_retries:
                # Bounded retry with exponential backoff; the update was
                # already trained, only the transfer repeats.
                self._schedule_upload(
                    queue, update, attempt + 1,
                    extra_delay=cfg.retry_backoff ** attempt,
                )
            else:
                self.result.dropped_updates += 1
            return

        duplicate = payload.get("duplicate", False)
        self.result.network.record_delivery(
            float(update.upload_size), float(payload["latency"]),
            duplicate=duplicate, retry=is_retry,
        )
        staleness = self.version - payload["version"]
        weight = cfg.staleness_weight ** staleness if staleness > 0 else 1.0
        self._buffer.add([update], weight=weight)

        if (
            not duplicate
            and cfg.duplicate_rate > 0.0
            and self.streams.duplicate.random() < cfg.duplicate_rate
        ):
            # A retry raced its original: the same payload arrives
            # again shortly — the aggregation path must merge it.
            queue.push(
                self.now + cfg.duplicate_delay, UPLOAD,
                update=update, version=payload["version"],
                attempt=attempt, failed=None,
                latency=float(payload["latency"]) + cfg.duplicate_delay,
                duplicate=True,
            )
            self._inflight += 1

        if len(self._buffer) >= cfg.effective_quorum:
            self._close_round(queue, short=False)

    def _handle_deadline(self, queue: EventQueue, event) -> None:
        if event.payload["window"] != self._window_id:
            return  # a window that already closed; stale timer
        if self._inflight == 0:
            return  # nothing can arrive anymore; the epoch flush decides
        cfg = self.config
        if len(self._buffer) == 0:
            self._arm_deadline(queue)  # empty window: just re-arm
            return
        if cfg.deadline_policy == APPLY:
            self._close_round(queue, short=True)
        elif cfg.deadline_policy == EXTEND:
            if self._window_extensions < cfg.max_extensions:
                self._window_extensions += 1
                self.result.rounds_extended += 1
                self._arm_deadline(queue)
            else:
                self._close_round(queue, short=True)
        else:  # SKIP: carry the buffer, age it, open a fresh window
            evicted = self._buffer.tick()
            self.result.dropped_updates += len(evicted)
            self.result.rounds_skipped += 1
            self._open_window(queue)

    # ------------------------------------------------------------------
    # Aggregation-window management
    # ------------------------------------------------------------------
    def _open_window(self, queue: EventQueue) -> None:
        self._window_id += 1
        self._window_extensions = 0
        self._arm_deadline(queue)

    def _arm_deadline(self, queue: EventQueue) -> None:
        deadline = self.config.round_deadline
        if deadline != float("inf"):
            queue.push(self.now + deadline, DEADLINE, window=self._window_id)

    def _close_round(self, queue: Optional[EventQueue], short: bool) -> None:
        buffered = self._buffer.drain()
        merged = merge_duplicate_users(buffered)
        self.result.duplicates_merged += len(buffered) - len(merged)
        self.backend.apply(merged)
        self.version += 1
        self.result.rounds_applied += 1
        self.result.updates_aggregated += len(merged)
        if short:
            self.result.short_rounds += 1
        if queue is not None:
            self._open_window(queue)
