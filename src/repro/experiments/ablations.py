"""Ablation experiments for the repo's own design choices.

DESIGN.md documents several decisions the paper leaves open (Θ
aggregation mode, server update rule, distillation subset size) and the
extensions this repo adds (compression, robustness).  Each runner here
measures one of those choices the same way the paper's tables measure
its components, declaring its grid as :class:`~repro.experiments.runner.
RunSpec` lists and fetching results through the shared cached
:func:`repro.experiments.runner.run_grid` executor where possible.

Runners (one per ablation bench):

* :func:`run_theta_mode`   — Θ deltas summed (paper Eq. 15 verbatim)
  vs averaged (this repo's default);
* :func:`run_server_optimizer` — plain delta application vs
  FedAvgM/FedAdam/FedYogi pseudo-gradient rules;
* :func:`run_compression`  — upload codecs vs accuracy and volume;
* :func:`run_kd_subset`    — RESKD's |V_kd| sweep (cost/benefit of the
  paper's subsampling);
* :func:`run_arch_comparison` — NCF / LightGCN / GMF under HeteFedRec
  and the strongest homogeneous baseline;
* :func:`run_robustness`   — the poisoning quadrants (clean/attacked ×
  undefended/defended);
* :func:`run_systems`      — analytic round wall-clock per method under
  a bandwidth-constrained device fleet;
* :func:`run_privacy`      — upload protection ladder (none / clip /
  clip+noise / clip+noise behind secure aggregation) with the end-to-end
  (ε, δ) spend from :mod:`repro.federated.accounting`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.compression.codecs import CompressionConfig
from repro.core.distillation import DistillationConfig
from repro.data.splitting import train_test_split_per_user
from repro.data.synthetic import load_benchmark_dataset
from repro.eval.evaluator import Evaluator
from repro.experiments.profiles import get_profile
from repro.experiments.reporting import format_table
from repro.experiments.runner import RunResult, RunSpec, build_config, run_grid
from repro.federated.aggregation import AggregationConfig
from repro.federated.privacy import PrivacyConfig
from repro.federated.secure_agg import SecureAggregationConfig
from repro.federated.server_optim import ServerOptimizerConfig
from repro.robustness.attacks import AttackConfig
from repro.robustness.defenses import RobustAggregationConfig
from repro.robustness.harness import AdversarialHeteFedRec

DATASET = "ml"  # ablations probe design choices; one dataset suffices


def _labelled_grid(
    specs: Dict[str, RunSpec], jobs: Optional[int]
) -> Dict[str, RunResult]:
    """Run a label→spec mapping through the grid executor, keeping labels."""
    grid = run_grid(list(specs.values()), jobs=jobs)
    return {label: grid[spec] for label, spec in specs.items()}


# ----------------------------------------------------------------------
# Θ aggregation mode
# ----------------------------------------------------------------------
def theta_mode_specs(profile: str = "bench", arch: str = "ncf") -> Dict[str, RunSpec]:
    return {
        # No override for the default arm — it shares the Table II cache entry.
        "theta mean (default)": RunSpec(
            DATASET, "hetefedrec", arch=arch, profile=profile
        ),
        "theta sum (paper)": RunSpec(
            DATASET, "hetefedrec", arch=arch, profile=profile,
            config_overrides={"aggregation": AggregationConfig(theta_mode="sum")},
        ),
    }


def run_theta_mode(
    profile: str = "bench", arch: str = "ncf", jobs: Optional[int] = None
) -> Dict[str, RunResult]:
    """HeteFedRec with Θ averaged (default) vs summed (Eq. 15 verbatim)."""
    return _labelled_grid(theta_mode_specs(profile, arch), jobs)


def format_theta_mode(results: Dict[str, RunResult]) -> str:
    rows = [[label, r.recall, r.ndcg] for label, r in results.items()]
    return format_table(
        ["Θ aggregation", "Recall@20", "NDCG@20"],
        rows,
        title="Ablation: Θ update combination (DESIGN.md deviation #1)",
    )


# ----------------------------------------------------------------------
# Server optimiser
# ----------------------------------------------------------------------
_SERVER_RULES: Tuple[Tuple[str, object], ...] = (
    ("direct (paper)", None),
    ("fedavgm", ServerOptimizerConfig(kind="fedavgm", lr=1.0, momentum=0.5)),
    ("fedadam", ServerOptimizerConfig(kind="fedadam", lr=0.02)),
    ("fedyogi", ServerOptimizerConfig(kind="fedyogi", lr=0.02)),
)


def server_optimizer_specs(
    profile: str = "bench", arch: str = "ncf"
) -> Dict[str, RunSpec]:
    return {
        label: RunSpec(
            DATASET, "hetefedrec", arch=arch, profile=profile,
            config_overrides=None if rule is None else {"server_optimizer": rule},
        )
        for label, rule in _SERVER_RULES
    }


def run_server_optimizer(
    profile: str = "bench", arch: str = "ncf", jobs: Optional[int] = None
) -> Dict[str, RunResult]:
    """Aggregated deltas applied directly vs through adaptive server rules."""
    return _labelled_grid(server_optimizer_specs(profile, arch), jobs)


def format_server_optimizer(results: Dict[str, RunResult]) -> str:
    rows = [[label, r.recall, r.ndcg] for label, r in results.items()]
    return format_table(
        ["Server rule", "Recall@20", "NDCG@20"],
        rows,
        title="Ablation: server-side optimiser (FedOpt family)",
    )


# ----------------------------------------------------------------------
# Compression
# ----------------------------------------------------------------------
_CODECS: Tuple[Tuple[str, object], ...] = (
    ("dense", None),
    ("topk 10% + EF", CompressionConfig(kind="topk", ratio=0.1, error_feedback=True)),
    ("topk 10%, no EF", CompressionConfig(kind="topk", ratio=0.1, error_feedback=False)),
    ("quantize 8-bit", CompressionConfig(kind="quantize", bits=8)),
    ("quantize 4-bit", CompressionConfig(kind="quantize", bits=4)),
)


def compression_specs(profile: str = "bench", arch: str = "ncf") -> Dict[str, RunSpec]:
    return {
        label: RunSpec(
            DATASET, "hetefedrec", arch=arch, profile=profile,
            config_overrides=None if codec is None else {"compression": codec},
        )
        for label, codec in _CODECS
    }


def run_compression(
    profile: str = "bench", arch: str = "ncf", jobs: Optional[int] = None
) -> Dict[str, RunResult]:
    """Upload codecs: ranking quality vs bytes on the wire."""
    return _labelled_grid(compression_specs(profile, arch), jobs)


def format_compression(results: Dict[str, RunResult]) -> str:
    baseline = results["dense"].communication_total or 1
    rows = [
        [label, f"{r.communication_total / baseline:.2f}x", r.recall, r.ndcg]
        for label, r in results.items()
    ]
    return format_table(
        ["Codec", "Comm. vol.", "Recall@20", "NDCG@20"],
        rows,
        title="Ablation: upload compression (extension)",
    )


# ----------------------------------------------------------------------
# RESKD subset size
# ----------------------------------------------------------------------
def kd_subset_specs(
    profile: str = "bench",
    arch: str = "ncf",
    sizes: Sequence[int] = (8, 32, 128),
) -> Dict[str, RunSpec]:
    default_size = DistillationConfig().num_items
    return {
        f"|V_kd| = {size}": RunSpec(
            DATASET, "hetefedrec", arch=arch, profile=profile,
            config_overrides=(
                None  # the default size shares the Table II cache entry
                if size == default_size
                else {"distillation": DistillationConfig(num_items=size)}
            ),
        )
        for size in sizes
    }


def run_kd_subset(
    profile: str = "bench",
    arch: str = "ncf",
    sizes: Sequence[int] = (8, 32, 128),
    jobs: Optional[int] = None,
) -> Dict[str, RunResult]:
    """|V_kd| sweep: the paper subsamples 'to avoid heavy computation'."""
    return _labelled_grid(kd_subset_specs(profile, arch, sizes), jobs)


def format_kd_subset(results: Dict[str, RunResult]) -> str:
    rows = [[label, r.recall, r.ndcg] for label, r in results.items()]
    return format_table(
        ["Distillation subset", "Recall@20", "NDCG@20"],
        rows,
        title="Ablation: RESKD subset size",
    )


# ----------------------------------------------------------------------
# Architecture generality (NCF / LightGCN / GMF)
# ----------------------------------------------------------------------
def arch_comparison_specs(
    profile: str = "bench",
    archs: Sequence[str] = ("ncf", "lightgcn", "mf"),
    dataset: str = "anime",
) -> List[RunSpec]:
    return [
        RunSpec(dataset, method, arch=arch, profile=profile)
        for arch in archs
        for method in ("all_small", "hetefedrec")
    ]


def run_arch_comparison(
    profile: str = "bench",
    archs: Sequence[str] = ("ncf", "lightgcn", "mf"),
    dataset: str = "anime",
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """HeteFedRec vs the strongest homogeneous baseline per architecture.

    Runs on Anime by default — the dataset where the bench profile's
    epoch budget sits at every method's convergence point, so the
    architecture comparison is not confounded by differential
    overtraining (see EXPERIMENTS.md on the ML analogue).
    """
    grid = run_grid(arch_comparison_specs(profile, archs, dataset), jobs=jobs)
    return {
        arch: {
            method: grid[RunSpec(dataset, method, arch=arch, profile=profile)]
            for method in ("all_small", "hetefedrec")
        }
        for arch in archs
    }


def format_arch_comparison(results: Dict[str, Dict[str, RunResult]]) -> str:
    rows = []
    for arch, methods in results.items():
        for method, r in methods.items():
            rows.append([arch, method, r.recall, r.ndcg])
    return format_table(
        ["Arch", "Method", "Recall@20", "NDCG@20"],
        rows,
        title="Ablation: base-model generality (incl. GMF extension)",
    )


# ----------------------------------------------------------------------
# Privacy ladder (+ end-to-end accounting)
# ----------------------------------------------------------------------
_PRIVACY_ARMS: Tuple[Tuple[str, Optional[PrivacyConfig], bool], ...] = (
    ("no protection", None, False),
    ("clip C=2", PrivacyConfig(clip_norm=2.0), False),
    ("clip C=2, σ=0.1", PrivacyConfig(clip_norm=2.0, noise_std=0.1), False),
    ("clip C=2, σ=0.2", PrivacyConfig(clip_norm=2.0, noise_std=0.2), False),
    (
        "clip C=2, σ=0.1 + secure agg",
        PrivacyConfig(clip_norm=2.0, noise_std=0.1),
        True,
    ),
)


def privacy_specs(profile: str = "bench", arch: str = "ncf") -> Dict[str, RunSpec]:
    specs: Dict[str, RunSpec] = {}
    for label, privacy, secure in _PRIVACY_ARMS:
        overrides: Dict[str, object] = {}
        if privacy is not None:
            overrides["privacy"] = privacy
        if secure:
            overrides["secure_aggregation"] = SecureAggregationConfig()
        specs[label] = RunSpec(
            DATASET, "hetefedrec", arch=arch, profile=profile,
            # The unprotected arm shares the Table II cache entry.
            config_overrides=overrides or None,
        )
    return specs


def run_privacy(
    profile: str = "bench", arch: str = "ncf", jobs: Optional[int] = None
) -> Dict[str, RunResult]:
    """Upload-protection ladder with its measured (ε, δ) spend.

    The noised arms report the accountant's end-to-end guarantee (the
    min of basic and advanced composition over all training rounds); the
    secure-aggregation arm additionally pays the honest protocol wire
    cost, visible in the communication column.
    """
    return _labelled_grid(privacy_specs(profile, arch), jobs)


def format_privacy(results: Dict[str, RunResult]) -> str:
    rows = []
    for label, r in results.items():
        if r.epsilon is None:
            eps = "∞ (no DP)"
        else:
            eps = f"({r.epsilon:.2f}, {r.delta:.0e})"
        rows.append([label, eps, f"{r.communication_total:,.0f}", r.recall, r.ndcg])
    return format_table(
        ["Protection", "(ε, δ)", "Comm. total", "Recall@20", "NDCG@20"],
        rows,
        title="Ablation: upload privacy ladder with end-to-end accounting",
    )


# ----------------------------------------------------------------------
# Robustness quadrants
# ----------------------------------------------------------------------
def run_robustness(
    profile: str = "bench", arch: str = "ncf"
) -> Dict[str, Tuple[float, float]]:
    """{clean, attacked} × {undefended, defended} → (recall, ndcg).

    Not routed through the run cache: the adversarial trainer is not a
    registry method and the quadrants share one dataset instance anyway.
    Metrics are measured over honest clients only.
    """
    prof = get_profile(profile)
    data = load_benchmark_dataset(DATASET, prof.synthetic_config())
    clients = train_test_split_per_user(data, seed=prof.seed)
    evaluator = Evaluator(clients, k=20)
    config = build_config(prof, arch, prof.seed)

    attack = AttackConfig(kind="signflip", fraction=0.2, scale=25.0, seed=7)
    defense = RobustAggregationConfig(kind="clip", clip_headroom=2.0)
    quadrants = {
        "clean / undefended": (None, None),
        "clean / defended": (None, defense),
        "attacked / undefended": (attack, None),
        "attacked / defended": (attack, defense),
    }
    results: Dict[str, Tuple[float, float]] = {}
    for label, (atk, dfs) in quadrants.items():
        trainer = AdversarialHeteFedRec(
            data.num_items, clients, config, attack=atk, defense=dfs
        )
        trainer.fit()
        evaluation = evaluator.evaluate(
            trainer.score_all_items, user_subset=trainer.honest_clients()
        )
        results[label] = (evaluation.recall, evaluation.ndcg)
    return results


def format_robustness(results: Dict[str, Tuple[float, float]]) -> str:
    rows = [[label, recall, ndcg] for label, (recall, ndcg) in results.items()]
    return format_table(
        ["Scenario", "Recall@20", "NDCG@20"],
        rows,
        title="Ablation: poisoning quadrants (honest clients only)",
    )


# ----------------------------------------------------------------------
# Systems wall-clock (analytic — no training)
# ----------------------------------------------------------------------
def run_systems(
    profile: str = "bench",
    methods: Sequence[str] = ("all_small", "all_large", "hetefedrec"),
) -> Dict[str, Dict[str, float]]:
    """Round wall-clock per method under a bandwidth-constrained fleet.

    Analytic (seconds to run): converts Table III payloads plus per-client
    training work into synchronous round times over a log-normal device
    population — the systems restatement of the communication argument.
    """
    from repro.core.grouping import divide_clients
    from repro.federated.systems import (
        SystemProfile,
        round_time_summary,
        simulate_round_times,
    )

    prof = get_profile(profile)
    data = load_benchmark_dataset(DATASET, prof.synthetic_config())
    clients = train_test_split_per_user(data, seed=prof.seed)
    group_of = divide_clients(clients, (5, 3, 2))
    train_sizes = {c.user_id: c.num_train for c in clients}
    dims = {"s": 8, "m": 16, "l": 32}
    fleet = SystemProfile(seed=prof.seed, median_bandwidth=2e4, bandwidth_sigma=1.0)

    results: Dict[str, Dict[str, float]] = {}
    for method in methods:
        times = simulate_round_times(
            method, group_of, train_sizes, data.num_items, dims, fleet,
            clients_per_round=min(prof.clients_per_round, len(clients)),
            num_rounds=60,
        )
        results[method] = round_time_summary(times)
    return results


def format_systems(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        [method, summary["median"], summary["p95"], summary["mean"]]
        for method, summary in results.items()
    ]
    return format_table(
        ["Method", "Median round (s)", "p95 (s)", "Mean (s)"],
        rows,
        title="Ablation: round wall-clock under a 20 kB/s-median fleet",
        float_format="{:.1f}",
    )
