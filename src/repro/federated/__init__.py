"""Federated-learning simulation substrate.

Implements the paper's FedRec protocol (Section III-A): a central server
holds public parameters (item table ``V`` and predictor ``Θ``), samples a
batch of clients each round, ships them the public parameters, receives
their updates, and aggregates.  User embeddings never leave their client.

The simulation is in-process and sequential but state-faithful: every
client in a round trains from the same global snapshot, exactly as
parallel devices would.
"""

from repro.federated.payload import (
    ClientUpdate,
    SparseRowDelta,
    as_dense_delta,
    state_delta,
    state_size,
)
from repro.federated.aggregation import (
    AggregationConfig,
    aggregate_head_updates,
    pad_columns,
    padded_embedding_aggregate,
)
from repro.federated.communication import CommunicationMeter, transmission_cost
from repro.federated.history import TrainingHistory
from repro.federated.client import ClientRuntime
from repro.federated.availability import (
    AvailabilityConfig,
    StragglerBuffer,
    client_fate,
    merge_duplicate_users,
    split_round,
)
from repro.federated.systems import (
    SystemProfile,
    round_time_summary,
    simulate_round_times,
    time_to_accuracy,
)
# NB: repro.federated.unlearning is intentionally NOT imported here — it
# builds on repro.core (HeteFedRec) and importing it from the package
# __init__ would be circular.  Import it directly:
#   from repro.federated.unlearning import UnlearningHeteFedRec
from repro.federated.secure_agg import (
    SecureAggregationConfig,
    SecureAggregationSession,
    secure_aggregate_updates,
)
from repro.federated.secure_protocol import (
    FaultPlan,
    SecureAggregationClient,
    SecureAggregationServer,
    SecureRoundAbort,
    SecureRoundReport,
    run_secure_round,
)
from repro.federated.accounting import (
    PrivacyAccountant,
    PrivacySpent,
)
from repro.federated.server_optim import ServerOptimizer, ServerOptimizerConfig
from repro.federated.trainer import FederatedConfig, FederatedTrainer
from repro.federated.round_engine import (
    FusedObjective,
    VectorizedRoundEngine,
    engine_supports,
)
from repro.federated.checkpoint import (
    CheckpointMismatchError,
    UnknownGroupError,
    checkpoint_groups,
    load_checkpoint,
    load_inference_model,
    load_user_embeddings,
    read_manifest,
    remove_checkpoint,
    save_checkpoint,
    user_embedding_from_checkpoint,
)

__all__ = [
    "ClientUpdate",
    "SparseRowDelta",
    "as_dense_delta",
    "state_delta",
    "state_size",
    "AggregationConfig",
    "pad_columns",
    "padded_embedding_aggregate",
    "aggregate_head_updates",
    "CommunicationMeter",
    "transmission_cost",
    "TrainingHistory",
    "ClientRuntime",
    "AvailabilityConfig",
    "StragglerBuffer",
    "client_fate",
    "merge_duplicate_users",
    "split_round",
    "SystemProfile",
    "simulate_round_times",
    "time_to_accuracy",
    "round_time_summary",
    "SecureAggregationConfig",
    "SecureAggregationSession",
    "secure_aggregate_updates",
    "FaultPlan",
    "SecureAggregationClient",
    "SecureAggregationServer",
    "SecureRoundAbort",
    "SecureRoundReport",
    "run_secure_round",
    "PrivacyAccountant",
    "PrivacySpent",
    "ServerOptimizer",
    "ServerOptimizerConfig",
    "FederatedConfig",
    "FederatedTrainer",
    "FusedObjective",
    "VectorizedRoundEngine",
    "engine_supports",
    "CheckpointMismatchError",
    "UnknownGroupError",
    "checkpoint_groups",
    "save_checkpoint",
    "load_checkpoint",
    "load_inference_model",
    "load_user_embeddings",
    "read_manifest",
    "remove_checkpoint",
    "user_embedding_from_checkpoint",
]
