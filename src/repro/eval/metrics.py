"""Ranking metrics: Recall@K and NDCG@K (paper Section V-B).

Evaluation follows the standard full-ranking protocol used by the paper's
metric references (LightGCN, etc.): for each user, score every item, mask
out the items seen during training/validation, rank the rest, and measure
how many of the held-out test items appear in the top K.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def rank_items(
    scores: np.ndarray,
    exclude: Optional[np.ndarray] = None,
    k: Optional[int] = None,
) -> np.ndarray:
    """Item ids sorted by descending score, with ``exclude`` masked out.

    With ``k`` set, only the top-k slice is materialised via
    :func:`partial_top_k` — an O(n) ``np.argpartition`` pass plus an
    O(k log k) sort of the slice — instead of a full O(n log n) argsort.
    Both paths order ties identically (descending score, ascending id).
    """
    scores = np.asarray(scores, dtype=np.float64).copy()
    if exclude is not None and len(exclude):
        scores[np.asarray(exclude, dtype=np.int64)] = -np.inf
    if k is None or k >= scores.size:
        return np.argsort(-scores, kind="stable")
    return partial_top_k(scores, k)


def partial_top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, ties broken by ascending index.

    Exactly equivalent to ``np.argsort(-scores, kind="stable")[:k]``.  A
    plain ``argpartition`` alone is not, because ties *at the k-boundary*
    may be resolved against the wrong (higher) indices; the boundary value
    is therefore handled explicitly: every index scoring strictly above the
    k-th value is in, and the remaining slots are filled with the lowest
    indices among those scoring exactly the k-th value.
    """
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k >= scores.size or np.isnan(scores).any():
        # NaNs break the boundary-value comparisons below (everything
        # compares False against a NaN k-th value); the stable argsort
        # ranks them last, preserving the historical behaviour.
        return np.argsort(-scores, kind="stable")[:k]
    kth_value = scores[np.argpartition(scores, scores.size - k)[scores.size - k]]
    above = np.flatnonzero(scores > kth_value)
    boundary = np.flatnonzero(scores == kth_value)[: k - above.size]
    top = np.concatenate([above, boundary])
    # Stable sort of the slice: ``flatnonzero`` yields ascending indices,
    # so equal scores keep ascending-id order, matching the full argsort.
    return top[np.argsort(-scores[top], kind="stable")]


def blocked_top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`partial_top_k` over a (B, I) score block.

    One batched ``np.argpartition`` plus a batched sort of the (B, k)
    slice covers the common no-tie case; rows where ties could reorder the
    result (duplicate values inside the top-k, or the k-th value recurring
    beyond the boundary) are recomputed exactly, so every row equals
    ``np.argsort(-row, kind="stable")[:k]``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"expected a (B, I) block, got shape {scores.shape}")
    num_rows, num_cols = scores.shape
    if k >= num_cols:
        return np.argsort(-scores, axis=1, kind="stable")
    candidates = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    values = np.take_along_axis(scores, candidates, axis=1)
    order = np.argsort(-values, axis=1, kind="stable")
    top = np.take_along_axis(candidates, order, axis=1)
    top_values = np.take_along_axis(values, order, axis=1)

    kth = top_values[:, -1]
    tie_inside = (
        (top_values[:, :-1] == top_values[:, 1:]).any(axis=1)
        if k > 1
        else np.zeros(num_rows, dtype=bool)
    )
    boundary_tie = (scores == kth[:, None]).sum(axis=1) > (
        top_values == kth[:, None]
    ).sum(axis=1)
    # NaN rows defeat both tie tests (all comparisons False), so route
    # them through the exact path as well.
    nan_rows = np.isnan(scores).any(axis=1)
    for row in np.flatnonzero(tie_inside | boundary_tie | nan_rows):
        top[row] = partial_top_k(scores[row], k)
    return top


def mask_scored_items(
    scores: np.ndarray, exclude: Sequence[Optional[np.ndarray]]
) -> np.ndarray:
    """Mask per-row item exclusions out of a (B, I) score block, in place.

    ``exclude`` aligns with the rows: one id array (or ``None``) per row.
    The single definition of exclusion masking shared by the evaluator's
    full-ranking protocol and the serving layer's top-k path — masked
    items score ``-inf`` and therefore never rank.  Returns ``scores``.
    """
    if scores.ndim != 2 or len(exclude) != scores.shape[0]:
        raise ValueError(
            f"expected one exclusion list per row of a (B, I) block, got "
            f"{len(exclude)} lists for shape {scores.shape}"
        )
    lengths = np.array(
        [0 if items is None else np.asarray(items).size for items in exclude]
    )
    if lengths.sum() > 0:
        rows = np.repeat(np.arange(scores.shape[0]), lengths)
        cols = np.concatenate(
            [
                np.asarray(items, dtype=np.int64)
                for items in exclude
                if items is not None and np.asarray(items).size
            ]
        )
        scores[rows, cols] = -np.inf
    return scores


def recall_at_k(ranked: Sequence[int], relevant: Sequence[int], k: int = 20) -> float:
    """|top-K ∩ relevant| / |relevant|; NaN-free (empty relevant → 0)."""
    relevant_set = set(int(i) for i in relevant)
    if not relevant_set:
        return 0.0
    top = list(ranked)[:k]
    hits = sum(1 for item in top if int(item) in relevant_set)
    return hits / len(relevant_set)


def ndcg_at_k(ranked: Sequence[int], relevant: Sequence[int], k: int = 20) -> float:
    """Normalised discounted cumulative gain with binary relevance.

    DCG = Σ_{positions p of hits} 1/log2(p+2); IDCG places all (up to K)
    relevant items at the top.
    """
    relevant_set = set(int(i) for i in relevant)
    if not relevant_set:
        return 0.0
    top = list(ranked)[:k]
    dcg = sum(
        1.0 / np.log2(position + 2.0)
        for position, item in enumerate(top)
        if int(item) in relevant_set
    )
    ideal_hits = min(len(relevant_set), k)
    idcg = sum(1.0 / np.log2(position + 2.0) for position in range(ideal_hits))
    return float(dcg / idcg) if idcg > 0 else 0.0
