"""Experiment harness: one runner per paper table/figure.

Every artefact of the paper's evaluation section has a module here that
(1) runs the required training jobs through the shared
:mod:`repro.experiments.runner`, (2) returns structured rows, and
(3) formats them the way the paper prints them.  Benchmarks under
``benchmarks/`` are thin wrappers over these runners.

Artefact index (see DESIGN.md §4):
Table I → :mod:`table1`; Fig. 1 → :mod:`fig1`; Table II → :mod:`table2`;
Fig. 6 → :mod:`fig6`; Fig. 7 → :mod:`fig7`; Table III → :mod:`table3`;
Table IV → :mod:`table4`; Table V → :mod:`table5`; Table VI → :mod:`table6`;
Table VII → :mod:`table7`; Fig. 8 → :mod:`fig8`.
"""

from repro.experiments.profiles import PROFILES, ExperimentProfile
from repro.experiments.runner import RunResult, RunSpec, run_grid, run_method
from repro.experiments.reporting import format_table

__all__ = [
    "PROFILES",
    "ExperimentProfile",
    "RunResult",
    "RunSpec",
    "run_grid",
    "run_method",
    "format_table",
]
