"""Integration tests: secure aggregation, compression and server optimisers
plugged into the full federated trainers."""

import numpy as np
import pytest

from repro.baselines.clustered import ClusteredTrainer
from repro.compression.codecs import CompressionConfig
from repro.core.config import HeteFedRecConfig
from repro.core.hetefedrec import HeteFedRec
from repro.federated.secure_agg import SecureAggregationConfig
from repro.federated.server_optim import ServerOptimizerConfig
from repro.federated.trainer import FederatedConfig, FederatedTrainer


def hete_config(**overrides):
    defaults = dict(epochs=1, clients_per_round=16, seed=3, local_epochs=2)
    defaults.update(overrides)
    return HeteFedRecConfig(**defaults)


@pytest.fixture(scope="module")
def small_world(tiny_dataset, tiny_clients):
    return tiny_dataset.num_items, tiny_clients


class TestSecureAggregationIntegration:
    def test_training_matches_plaintext(self, small_world):
        """Secure and plaintext aggregation must produce (near-)identical
        global models — the protocol only hides, never changes, the sum."""
        num_items, clients = small_world
        plain = HeteFedRec(num_items, clients, hete_config())
        secure = HeteFedRec(
            num_items,
            clients,
            hete_config(secure_aggregation=SecureAggregationConfig(seed=9)),
        )
        plain.fit()
        secure.fit()
        for group in plain.groups:
            a = plain.models[group].item_embedding.weight.data
            b = secure.models[group].item_embedding.weight.data
            assert np.allclose(a, b, atol=1e-3), f"group {group} diverged"

    def test_rejected_for_custom_aggregation(self, small_world):
        num_items, clients = small_world
        with pytest.raises(ValueError):
            ClusteredTrainer(
                num_items,
                clients,
                FederatedConfig(
                    epochs=1, secure_aggregation=SecureAggregationConfig()
                ),
            )


class TestCompressionIntegration:
    def test_upload_volume_shrinks(self, small_world):
        num_items, clients = small_world
        dense = HeteFedRec(num_items, clients, hete_config())
        compressed = HeteFedRec(
            num_items,
            clients,
            hete_config(compression=CompressionConfig(kind="topk", ratio=0.1)),
        )
        dense.fit()
        compressed.fit()
        assert compressed.meter.total_upload < 0.5 * dense.meter.total_upload
        # Downloads are unchanged: the server still ships dense models.
        assert compressed.meter.total_download == dense.meter.total_download

    def test_quantized_training_still_learns(self, small_world):
        num_items, clients = small_world
        trainer = HeteFedRec(
            num_items,
            clients,
            hete_config(compression=CompressionConfig(kind="quantize", bits=8)),
        )
        history = trainer.fit()
        assert np.isfinite(history.records[-1].train_loss)

    def test_none_compression_is_noop(self, small_world):
        num_items, clients = small_world
        trainer = HeteFedRec(
            num_items, clients, hete_config(compression=CompressionConfig(kind="none"))
        )
        assert trainer._compressor is None


class TestServerOptimizerIntegration:
    @pytest.mark.parametrize("kind", ["fedavgm", "fedadam", "fedyogi"])
    def test_nesting_invariant_survives(self, small_world, kind):
        """RESKD off, the Eq. 10 invariant must hold under any server rule."""
        num_items, clients = small_world
        trainer = HeteFedRec(
            num_items,
            clients,
            hete_config(
                enable_reskd=False,
                server_optimizer=ServerOptimizerConfig(kind=kind, lr=0.05),
            ),
        )
        trainer.fit()
        v_s = trainer.models["s"].item_embedding.weight.data
        v_m = trainer.models["m"].item_embedding.weight.data
        v_l = trainer.models["l"].item_embedding.weight.data
        assert np.allclose(v_s, v_m[:, : v_s.shape[1]])
        assert np.allclose(v_m, v_l[:, : v_m.shape[1]])

    def test_sgd_unit_lr_matches_default_path(self, small_world):
        num_items, clients = small_world
        default = HeteFedRec(num_items, clients, hete_config())
        explicit = HeteFedRec(
            num_items,
            clients,
            hete_config(server_optimizer=ServerOptimizerConfig(kind="sgd", lr=1.0)),
        )
        default.fit()
        explicit.fit()
        for group in default.groups:
            assert np.allclose(
                default.models[group].item_embedding.weight.data,
                explicit.models[group].item_embedding.weight.data,
            )


class TestFeatureComposition:
    def test_compression_plus_secure_aggregation(self, small_world):
        """The two compose: compression shrinks what the masking protects."""
        num_items, clients = small_world
        trainer = HeteFedRec(
            num_items,
            clients,
            hete_config(
                compression=CompressionConfig(kind="quantize", bits=8),
                secure_aggregation=SecureAggregationConfig(),
            ),
        )
        history = trainer.fit()
        assert np.isfinite(history.records[-1].train_loss)

    def test_all_three_together(self, small_world):
        num_items, clients = small_world
        trainer = HeteFedRec(
            num_items,
            clients,
            hete_config(
                compression=CompressionConfig(kind="topk", ratio=0.25),
                secure_aggregation=SecureAggregationConfig(),
                server_optimizer=ServerOptimizerConfig(kind="fedavgm", momentum=0.5),
            ),
        )
        history = trainer.fit()
        assert np.isfinite(history.records[-1].train_loss)
