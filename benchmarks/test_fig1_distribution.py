"""Benchmark: Fig. 1 — per-user interaction-count distributions."""

from repro.experiments.fig1 import format_fig1, run_fig1


def test_fig1_interaction_distribution(benchmark, artifact):
    results = benchmark.pedantic(
        lambda: run_fig1("bench"), rounds=1, iterations=1
    )
    artifact("fig1_distribution", format_fig1(results))

    for name, result in results.items():
        # The paper's motivating observation: most users sit below the
        # mean interaction count (heavy right tail).
        assert result["tail_heaviness"] > 0.5, name
        # Substantial dispersion: std is a sizeable fraction of the mean.
        assert result["std"] / result["avg"] > 0.4, name
