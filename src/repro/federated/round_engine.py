"""Vectorized round execution: train every client of a dim-group at once.

The reference protocol (``FederatedTrainer.train_client``) runs each
client's local session through its own small autodiff graph — correct,
but a 256-client round then pays Python/tape overhead 256 times per local
epoch.  Because every client in a round trains *from the same global
snapshot* and the server only sees the resulting deltas, the sessions are
mutually independent; this engine exploits that to run all of a
dim-group's sessions as one fused batched graph per local epoch.

Padding / mask scheme
---------------------
Clients of one group share an embedding width ``d`` but differ in batch
length and in which item rows they touch, so both axes are padded:

* **Item rows.**  Each client ``b`` only ever reads/writes the rows named
  in its local batches.  The union of those rows, ``uniq_b``, is copied
  out of the global table into a per-client working table; the stacked
  working tables form ``W`` of shape ``(B, S, d)`` where ``S = max_b
  |uniq_b|``.  Rows past ``|uniq_b|`` are zero padding that no index ever
  references, so they receive zero gradient and never feed back.
* **Batch positions.**  Per-epoch batches are right-padded to ``L = max_b
  L_b`` with local index 0 and label 0; a weight matrix carrying
  ``1/L_b`` on real positions and ``0`` on padding reproduces each
  client's *own* BCE mean while zeroing every padded position's gradient.
* **Private/user state.**  User embeddings stack into ``(B, d)``; the
  group's head parameters are replicated per client into ``(B, ...)``
  stacks, because each reference session trains its own head copy before
  the server aggregates the deltas.

One shared :class:`~repro.nn.optim.Adam` instance over the stacked
parameters is *exactly* B independent per-client Adams: the update is
elementwise and every client steps at the same local-epoch boundaries.
Likewise the dense per-row moments of the stacked working tables evolve
exactly as the touched rows of the reference's full-table moments (rows
with zero gradient keep zero moments).  The engine is therefore
numerically equivalent to the per-client reference path up to
floating-point summation order; ``tests/test_round_engine.py`` pins this
to 1e-8 over multi-epoch runs.

The reference path remains the correctness oracle and the fallback for
everything the fused graph does not model: LightGCN's per-user local
graph, and subclasses that override the local-training hooks
(``client_loss``, ``trained_head_groups``, ``train_client``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

import numpy as np

from repro.autograd import ops
from repro.data.sampling import TrainingBatch
from repro.federated.payload import ClientUpdate, state_delta
from repro.federated.privacy import protect_update
from repro.nn.layers import Linear
from repro.nn.module import Parameter
from repro.nn.optim import Adam

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federated.trainer import FederatedTrainer


#: Architectures whose *training* graph the engine knows how to fuse
#: (``_forward`` reproduces the ScoringHead MLP+GMF structure).  This is
#: deliberately narrower than ``BaseRecommender.batched_scoring``, which
#: only promises inference-time ``score_matrix`` support: a new
#: architecture needs an engine forward of its own, not just scoring.
#: LightGCN needs each client's local interaction graph inside the
#: forward pass and stays per-client for both.
BATCHABLE_ARCHS = ("ncf", "mf")


def engine_supports(trainer: "FederatedTrainer") -> bool:
    """Whether ``trainer`` can be driven by the vectorized engine.

    True only when local training is the base protocol: plain BCE loss,
    own-group head only, and the stock ``train_client`` body.  Subclasses
    that override any of those hooks (HeteFedRec's dual-task loss,
    Standalone's private models, ...) keep the reference path.
    """
    from repro.federated.trainer import FederatedTrainer

    cls = type(trainer)
    return (
        trainer.config.arch in BATCHABLE_ARCHS
        and cls.train_client is FederatedTrainer.train_client
        and trainer.local_training_is_base()
    )


def _length_buckets(
    lengths: np.ndarray,
    dim: int,
    waste: float = 1.35,
    area_cap: int = 16_000_000,
) -> List[np.ndarray]:
    """Partition clients into padding-friendly buckets by batch length.

    Within a bucket every batch is right-padded to the bucket maximum.
    Walking clients in ascending length order, a bucket is closed when
    admitting the next client would push the bucket's *padded* area
    ``(B+1)·L_max`` beyond ``waste``× its real area ``Σ L_b`` — so padded
    positions stay under ~35% while near-uniform rounds fuse into a
    single graph — or when the padded activation area ``B·L·d`` would
    pass ``area_cap`` elements (bounds peak memory for huge rounds).
    Interaction counts are heavy-tailed, so without this the whole
    group would pad to its one chattiest client.
    """
    order = np.argsort(lengths, kind="stable")
    buckets: List[np.ndarray] = []
    current: List[int] = []
    real_area = 0
    for position in order:
        length = max(int(lengths[position]), 1)
        padded_area = (len(current) + 1) * length
        if current and (
            padded_area > waste * (real_area + length)
            or padded_area * dim > area_cap
        ):
            buckets.append(np.asarray(current, dtype=np.int64))
            current = []
            real_area = 0
        current.append(int(position))
        real_area += length
    if current:
        buckets.append(np.asarray(current, dtype=np.int64))
    return buckets


class VectorizedRoundEngine:
    """Batched executor for one round's local-training phase."""

    def __init__(self, trainer: "FederatedTrainer") -> None:
        if not engine_supports(trainer):
            raise ValueError(
                f"{type(trainer).__name__} (arch={trainer.config.arch!r}) "
                "is not supported by the vectorized round engine"
            )
        self.trainer = trainer

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def train_round(self, user_ids: Sequence[int]) -> List[ClientUpdate]:
        """Train every listed client and return updates in input order."""
        trainer = self.trainer
        cfg = trainer.config
        by_group: Dict[str, List[int]] = {}
        for user in user_ids:
            by_group.setdefault(trainer.group_of[user], []).append(user)

        raw: Dict[int, ClientUpdate] = {}
        for group in trainer.groups:
            members = by_group.get(group)
            if members:
                for update in self._train_group(group, members):
                    raw[update.user_id] = update

        # Client-side upload transforms run in the round's client order:
        # the compressor may hold a shared codec RNG, so applying them in
        # bucket order would diverge from the reference path.
        updates: List[ClientUpdate] = []
        for user in user_ids:
            update = raw[user]
            head_deltas = update.head_deltas
            if cfg.privacy is not None and cfg.privacy.enabled:
                update = protect_update(update, cfg.privacy, trainer.runtimes[user].rng)
            if trainer._compressor is not None:
                update = trainer._compressor.apply(update)
            trainer._record_communication(update.group, head_deltas, update)
            updates.append(update)
        return updates

    # ------------------------------------------------------------------
    # One dim-group
    # ------------------------------------------------------------------
    def _train_group(self, group: str, users: List[int]) -> List[ClientUpdate]:
        trainer = self.trainer
        cfg = trainer.config
        runtimes = [trainer.runtimes[user] for user in users]

        # Pre-draw every local epoch's batch.  Each client's sampler and
        # shuffle RNG are private, so drawing a client's epochs back to
        # back consumes its streams in exactly the reference order.
        epoch_batches: List[List[TrainingBatch]] = [
            [runtime.sample_batch(cfg.negative_ratio) for _ in range(cfg.local_epochs)]
            for runtime in runtimes
        ]

        # Interaction counts are heavy-tailed, so padding the whole group
        # to its longest batch would drown the win in padded work; bucket
        # clients by batch length and fuse each bucket separately.
        lengths = np.array([len(batches[0]) if batches else 0 for batches in epoch_batches])
        updates: List[ClientUpdate] = []
        for bucket in _length_buckets(lengths, cfg.dims[group]):
            updates.extend(
                self._train_bucket(
                    group,
                    [users[i] for i in bucket],
                    [runtimes[i] for i in bucket],
                    [epoch_batches[i] for i in bucket],
                )
            )
        return updates

    def _train_bucket(
        self,
        group: str,
        users: List[int],
        runtimes,
        epoch_batches: List[List[TrainingBatch]],
    ) -> List[ClientUpdate]:
        trainer = self.trainer
        cfg = trainer.config
        model = trainer.models[group]
        num_clients = len(users)
        dim = cfg.dims[group]
        table = model.item_embedding.weight.data  # global V, read-only here
        dtype = table.dtype

        # Per-client local row sets and per-epoch local index arrays.
        uniq_rows: List[np.ndarray] = []
        local_idx: List[List[np.ndarray]] = []
        for batches in epoch_batches:
            items = np.concatenate([batch.items for batch in batches]) if batches else np.empty(0, np.int64)
            uniq, inverse = np.unique(items, return_inverse=True)
            if uniq.size == 0:
                uniq = np.zeros(1, dtype=np.int64)
                inverse = np.zeros(items.size, dtype=np.int64)
            uniq_rows.append(uniq)
            bounds = np.cumsum([0] + [len(batch) for batch in batches])
            local_idx.append(
                [inverse[bounds[e] : bounds[e + 1]] for e in range(len(batches))]
            )

        batch_lengths = np.array(
            [len(batches[0]) if batches else 0 for batches in epoch_batches]
        )
        max_len = max(int(batch_lengths.max()), 1)
        max_rows = max(len(uniq) for uniq in uniq_rows)

        # Stacked working tables, user matrix and replicated head.
        work_table = np.zeros((num_clients, max_rows, dim), dtype=dtype)
        for b, uniq in enumerate(uniq_rows):
            work_table[b, : uniq.size] = table[uniq]
        table_param = Parameter(work_table, name=f"V[{group}]xB")
        user_param = Parameter(
            np.stack([runtime.user_embedding for runtime in runtimes]).astype(
                dtype, copy=False
            ),
            name=f"U[{group}]xB",
        )
        head_before = model.head.state_dict()
        stacked_head: Dict[str, Parameter] = {
            name: Parameter(
                np.repeat(value[np.newaxis], num_clients, axis=0), name=f"{name}xB"
            )
            for name, value in head_before.items()
        }

        optimizer = Adam(
            [user_param, table_param, *stacked_head.values()], lr=cfg.lr
        )

        # Padded per-epoch index / label / weight tensors.
        per_client_loss = np.zeros(num_clients)
        for epoch in range(cfg.local_epochs):
            idx = np.zeros((num_clients, max_len), dtype=np.int64)
            labels = np.zeros((num_clients, max_len), dtype=dtype)
            weights = np.zeros((num_clients, max_len), dtype=dtype)
            for b, batches in enumerate(epoch_batches):
                if not batches:
                    continue
                length = len(batches[epoch])
                idx[b, :length] = local_idx[b][epoch]
                labels[b, :length] = batches[epoch].labels
                weights[b, :length] = 1.0 / max(length, 1)

            optimizer.zero_grad()
            elementwise = ops.bce_with_logits(
                self._forward(model, user_param, table_param, stacked_head, idx),
                labels,
                reduction="none",
            )
            loss = (elementwise * weights).sum()
            loss.backward()
            optimizer.step()
            per_client_loss = (elementwise.data * (weights > 0)).sum(axis=1) / np.maximum(
                batch_lengths, 1
            )

        return self._emit_updates(
            group,
            users,
            runtimes,
            uniq_rows,
            table,
            table_param,
            user_param,
            head_before,
            stacked_head,
            batch_lengths,
            per_client_loss,
        )

    def _forward(
        self,
        model,
        user_param: Parameter,
        table_param: Parameter,
        stacked_head: Dict[str, Parameter],
        idx: np.ndarray,
    ):
        """One fused forward pass → (B, L) logits for the whole bucket.

        The user embedding is kept as a (B, 1, d) operand throughout —
        the GMF weight is folded into it (``(u⊙v)·w = v·(u⊙w)``) and the
        first FFN layer's ``[u, v]`` GEMM is split into a user term and an
        item term — so no (B, L, d) user broadcast or (B, L, 2d) concat is
        ever materialised.
        """
        num_clients, max_len = idx.shape
        dim = user_param.shape[1]
        item_vecs = ops.batched_gather(table_param, idx)
        user_col = user_param.reshape(num_clients, dim, 1)

        gmf_weight = user_col * stacked_head["gmf.weight"]
        logits = item_vecs.matmul(gmf_weight).reshape(num_clients, max_len)
        if model.arch == "mf":
            return logits

        z = None
        for position, layer in enumerate(model.head.ffn):
            if isinstance(layer, Linear):
                weight = stacked_head[f"ffn.layer{position}.weight"]
                if z is None:
                    user_term = user_param.reshape(num_clients, 1, dim).matmul(
                        weight[:, :dim, :]
                    )
                    z = item_vecs.matmul(weight[:, dim:, :]) + user_term
                else:
                    z = z.matmul(weight)
                if layer.has_bias:
                    bias = stacked_head[f"ffn.layer{position}.bias"]
                    z = z + bias.reshape(num_clients, 1, -1)
            else:
                z = z.relu()
        return logits + z.reshape(num_clients, max_len)

    # ------------------------------------------------------------------
    # Update emission (mirrors the tail of ``train_client``)
    # ------------------------------------------------------------------
    def _emit_updates(
        self,
        group: str,
        users: List[int],
        runtimes,
        uniq_rows: List[np.ndarray],
        table: np.ndarray,
        table_param: Parameter,
        user_param: Parameter,
        head_before: Dict[str, np.ndarray],
        stacked_head: Dict[str, Parameter],
        batch_lengths: np.ndarray,
        per_client_loss: np.ndarray,
    ) -> List[ClientUpdate]:
        updates: List[ClientUpdate] = []
        for b, (user, runtime) in enumerate(zip(users, runtimes)):
            runtime.commit_user_embedding(user_param.data[b])

            uniq = uniq_rows[b]
            embedding_delta = np.zeros_like(table)
            embedding_delta[uniq] = table_param.data[b, : uniq.size] - table[uniq]

            head_after = {
                name: stacked_head[name].data[b] for name in head_before
            }
            updates.append(
                ClientUpdate(
                    user_id=user,
                    group=group,
                    embedding_delta=embedding_delta,
                    head_deltas={group: state_delta(head_after, head_before)},
                    num_examples=int(batch_lengths[b]),
                    train_loss=float(per_client_loss[b]),
                )
            )
        return updates
