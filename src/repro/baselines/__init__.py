"""The six baselines the paper constructs (Section V-C).

Homogeneous: All Small, All Large, All Large/Exclusive.
Heterogeneous: Standalone, Clustered FedRec, Directly Aggregate.
All run through the same trainer interface as HeteFedRec so the
experiment harness treats every method uniformly.
"""

from repro.baselines.homogeneous import (
    AllLargeExclusiveTrainer,
    HomogeneousTrainer,
    all_large,
    all_large_exclusive,
    all_small,
)
from repro.baselines.standalone import StandaloneTrainer
from repro.baselines.clustered import ClusteredTrainer
from repro.baselines.direct import DirectAggregateTrainer
from repro.baselines.registry import METHODS, build_method

__all__ = [
    "HomogeneousTrainer",
    "AllLargeExclusiveTrainer",
    "all_small",
    "all_large",
    "all_large_exclusive",
    "StandaloneTrainer",
    "ClusteredTrainer",
    "DirectAggregateTrainer",
    "METHODS",
    "build_method",
]
