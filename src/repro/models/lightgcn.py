"""Privacy-preserving LightGCN (He et al., 2020) on the client-local graph.

The paper (Section III-B) applies one layer of LightGCN propagation, and
"to ensure privacy, the propagation is only used in user's local graph" —
i.e. the only edges visible to a client are its own user→item edges.  On
that star-shaped local graph a single propagation step gives:

* user:   ``e_u' = (e_u + mean_{j ∈ N(u)} e_j) / 2`` — the user node
  absorbs the average of its interacted items (its entire neighbourhood);
* item:   ``e_j' = (e_j + e_u) / 2`` for items the user interacted with
  (their only local neighbour is the user), ``e_j' = e_j`` otherwise.

The propagated embeddings are then scored with the same FFN head as NCF
(Eq. 5).  Propagation happens inside the autodiff graph, so gradients flow
back through the neighbourhood average into the item table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.models.base import BaseRecommender, ScoringHead, tile_user


@dataclass(frozen=True)
class LocalGraphPropagation:
    """Batchable description of the star-graph propagation in ``_score``.

    The client-local graph is star-shaped (the user node joined to its
    ``train_item_ids``), so each of the ``layers`` propagation steps is
    fully described by the normalized adjacency of that star:

    * the user row is the degree-normalized neighbourhood average — a
      sparse row vector ``1/|N(u)|`` over the neighbour item rows, which
      the engine stacks across clients into one padded CSR layout and
      applies as a single batched sparse–dense matmul;
    * interacted item rows mix with the user row elementwise.

    Both steps are coordinatewise in the embedding, so running them at
    the full group width and letting the zero-padded heads annihilate
    the ``≥ w`` coordinates reproduces every dual-task width's
    propagation exactly (same argument as the padded-head logits).
    """


class LightGCN(BaseRecommender):
    """One-layer local-graph LightGCN propagation + FFN scoring head."""

    arch = "lightgcn"
    batched_scoring = True

    def fused_propagation(self) -> LocalGraphPropagation:
        """The engine-executable form of this model's local propagation."""
        return LocalGraphPropagation()

    def score_matrix(
        self,
        user_mat: np.ndarray,
        width: Optional[int] = None,
        head: Optional[ScoringHead] = None,
        train_items: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> np.ndarray:
        """Blocked full-catalogue scoring through the star-graph propagation.

        The same decomposition that batches training: the user rows
        absorb their neighbourhood means (one scatter-add over the
        concatenated edge list), after which the *non-interacted* items
        score exactly like NCF — one all-pairs ``logits_matrix`` block —
        while each user's interacted items mix with its un-propagated
        user row, a sparse set of aligned (user, item) pairs corrected
        in place via :meth:`ScoringHead.logits_pairs`.  ``train_items``
        omitted (or empty per user) degenerates to the un-propagated
        limit, matching :meth:`_score`.
        """
        user_mat, item_mat, head = self._prefix_block(user_mat, width, head)
        num_users = user_mat.shape[0]
        if train_items is None:
            train_items = [None] * num_users
        if len(train_items) != num_users:
            raise ValueError(
                f"train_items has {len(train_items)} entries for {num_users} users"
            )

        lengths = np.array(
            [0 if items is None else len(items) for items in train_items],
            dtype=np.int64,
        )
        if lengths.sum() == 0:
            return head.logits_matrix(user_mat, item_mat)

        edge_users = np.repeat(np.arange(num_users), lengths)
        edge_items = np.concatenate(
            [
                np.asarray(items, dtype=np.int64)
                for items in train_items
                if items is not None and len(items)
            ]
        )

        # User propagation: e_u' = (e_u + mean_{j ∈ N(u)} e_j) / 2.
        neighbour_sums = np.zeros_like(user_mat)
        np.add.at(neighbour_sums, edge_users, item_mat[edge_items])
        connected = lengths > 0
        user_prop = user_mat.copy()
        user_prop[connected] = (
            user_mat[connected]
            + neighbour_sums[connected] / lengths[connected, np.newaxis]
        ) * 0.5

        scores = head.logits_matrix(user_prop, item_mat)
        # Interacted-item correction: e_j' = (e_j + e_u) / 2 on the edges.
        pair_items = (item_mat[edge_items] + user_mat[edge_users]) * 0.5
        scores[edge_users, edge_items] = head.logits_pairs(
            user_prop[edge_users], pair_items
        )
        return scores

    def _score(
        self,
        user_vec: Tensor,
        item_vecs: Tensor,
        item_ids: np.ndarray,
        train_item_ids: Optional[np.ndarray],
        head: ScoringHead,
        width: int,
    ) -> Tensor:
        batch = item_vecs.shape[0]

        if train_item_ids is None or len(train_item_ids) == 0:
            # No local graph available (e.g. cold evaluation): degenerate to
            # the un-propagated embeddings, which is the correct limit of
            # the propagation when the neighbourhood is empty.
            user_prop = user_vec
            item_prop = item_vecs
        else:
            train_item_ids = np.asarray(train_item_ids, dtype=np.int64)
            neighbour_vecs = self.item_vectors(train_item_ids, width=width)
            user_prop = (user_vec + neighbour_vecs.mean(axis=0)) * 0.5

            interacted = np.isin(item_ids, train_item_ids).reshape(batch, 1)
            user_row = user_vec.reshape(1, -1)
            propagated = (item_vecs + user_row) * 0.5
            item_prop = ops.where(interacted, propagated, item_vecs)

        user_mat = tile_user(user_prop, batch)
        return head(user_mat, item_prop)
