"""The evaluator: turns a scoring function into Table II-style numbers.

The federated trainers expose ``score_all_items(client) -> scores``; the
evaluator runs the full-ranking protocol over every client and averages
Recall@20 / NDCG@20, overall and (via :mod:`repro.eval.groups`) per client
group for Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataset import ClientData
from repro.eval.metrics import ndcg_at_k, rank_items, recall_at_k

ScoreFn = Callable[[ClientData], np.ndarray]


@dataclass
class EvaluationResult:
    """Aggregated metrics plus the per-user values they were averaged from."""

    recall: float
    ndcg: float
    k: int
    per_user_recall: np.ndarray
    per_user_ndcg: np.ndarray
    evaluated_users: np.ndarray

    def __str__(self) -> str:
        return f"Recall@{self.k}={self.recall:.5f} NDCG@{self.k}={self.ndcg:.5f}"


class Evaluator:
    """Full-ranking evaluation over a fixed client split.

    Parameters
    ----------
    clients:
        Per-user splits; users with empty test sets are skipped (their
        metrics are undefined), matching common practice.
    k:
        Cut-off for Recall@K / NDCG@K (paper: 20).
    """

    def __init__(self, clients: Sequence[ClientData], k: int = 20) -> None:
        self.clients = list(clients)
        self.k = k

    def evaluate(
        self,
        score_fn: ScoreFn,
        user_subset: Optional[Sequence[int]] = None,
    ) -> EvaluationResult:
        """Evaluate ``score_fn`` over all (or a subset of) users."""
        subset = (
            set(int(u) for u in user_subset) if user_subset is not None else None
        )
        recalls: List[float] = []
        ndcgs: List[float] = []
        users: List[int] = []
        for client in self.clients:
            if subset is not None and client.user_id not in subset:
                continue
            if client.test_items.size == 0:
                continue
            scores = score_fn(client)
            ranked = rank_items(scores, exclude=client.known_items(), k=self.k)
            recalls.append(recall_at_k(ranked, client.test_items, k=self.k))
            ndcgs.append(ndcg_at_k(ranked, client.test_items, k=self.k))
            users.append(client.user_id)

        if not recalls:
            empty = np.empty(0)
            return EvaluationResult(0.0, 0.0, self.k, empty, empty, np.empty(0, dtype=int))
        return EvaluationResult(
            recall=float(np.mean(recalls)),
            ndcg=float(np.mean(ndcgs)),
            k=self.k,
            per_user_recall=np.asarray(recalls),
            per_user_ndcg=np.asarray(ndcgs),
            evaluated_users=np.asarray(users, dtype=int),
        )
