"""Sharded, memmap-backed user-state storage for population-scale sims.

One dense in-RAM ``(num_users, dim)`` table stops working somewhere
around :math:`10^5` users — and a population simulation touches only
the few thousand *concurrent* clients anyway.  :class:`MemmapUserStore`
shards the table into ``shard_size``-row ``.npy`` memmaps created
lazily on first touch and keeps at most ``max_open_shards`` of them
mapped (LRU): resident memory is bounded by
``max_open_shards * shard_size * dim * itemsize`` regardless of
population size, while reads/writes stay O(touched rows) — the same
contract :class:`~repro.federated.payload.SparseRowDelta` gives the
update path.

Shard *content* is deterministic in ``(seed, shard_index)`` alone, so
two runs that touch shards in different orders still read identical
rows — the store never leaks event-ordering into the data.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np
from numpy.lib.format import open_memmap


class MemmapUserStore:
    """Lazy sharded ``(num_users, dim)`` float table backed by ``.npy`` files."""

    def __init__(
        self,
        directory: str,
        num_users: int,
        dim: int,
        shard_size: int = 4096,
        max_open_shards: int = 8,
        dtype: str = "float32",
        init_std: float = 0.01,
        seed: int = 0,
    ) -> None:
        if num_users < 1 or dim < 1:
            raise ValueError(f"invalid store shape ({num_users}, {dim})")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if max_open_shards < 1:
            raise ValueError(f"max_open_shards must be >= 1, got {max_open_shards}")
        self.directory = directory
        self.num_users = int(num_users)
        self.dim = int(dim)
        self.shard_size = int(shard_size)
        self.max_open_shards = int(max_open_shards)
        self.dtype = np.dtype(dtype)
        self.init_std = float(init_std)
        self.seed = int(seed)
        os.makedirs(directory, exist_ok=True)
        self._open_shards: "OrderedDict[int, np.memmap]" = OrderedDict()
        self.shards_created = 0
        self.peak_open_shards = 0
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Shard plumbing
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return (self.num_users + self.shard_size - 1) // self.shard_size

    def _shard_rows(self, index: int) -> int:
        return min(self.shard_size, self.num_users - index * self.shard_size)

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.directory, f"users_{index:06d}.npy")

    def _open(self, index: int) -> np.memmap:
        shard = self._open_shards.get(index)
        if shard is not None:
            self._open_shards.move_to_end(index)
            return shard
        # Evict before mapping anything new: the cap is strict, never
        # cap + 1, even transiently.
        while len(self._open_shards) >= self.max_open_shards:
            _, evicted = self._open_shards.popitem(last=False)
            evicted.flush()
            del evicted  # drop the mapping; the OS reclaims the pages
        path = self._shard_path(index)
        if os.path.exists(path):
            shard = open_memmap(path, mode="r+")
        else:
            shard = open_memmap(
                path, mode="w+", dtype=self.dtype,
                shape=(self._shard_rows(index), self.dim),
            )
            # Content depends on (seed, index) only — never on the order
            # in which the simulation happened to touch shards.
            rng = np.random.default_rng(np.random.SeedSequence([self.seed, index]))
            shard[...] = rng.normal(
                0.0, self.init_std, size=shard.shape
            ).astype(self.dtype, copy=False)
            self.shards_created += 1
        self._open_shards[index] = shard
        self.peak_open_shards = max(self.peak_open_shards, len(self._open_shards))
        return shard

    def _by_shard(self, user_ids: np.ndarray) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Group positions by shard: yields (shard_index, positions, local_rows)."""
        shard_of = user_ids // self.shard_size
        for index in np.unique(shard_of):
            mask = shard_of == index
            yield int(index), np.flatnonzero(mask), user_ids[mask] - index * self.shard_size

    # ------------------------------------------------------------------
    # Row access (O(touched rows))
    # ------------------------------------------------------------------
    def read(self, user_ids) -> np.ndarray:
        """The rows of ``user_ids``, as a fresh ``(n, dim)`` array."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        if user_ids.size and (user_ids.min() < 0 or user_ids.max() >= self.num_users):
            raise IndexError("user id out of range")
        out = np.empty((user_ids.size, self.dim), dtype=self.dtype)
        for index, positions, local in self._by_shard(user_ids):
            out[positions] = self._open(index)[local]
        self.reads += int(user_ids.size)
        return out

    def write(self, user_ids, values: np.ndarray) -> None:
        """Store ``values[i]`` at row ``user_ids[i]``."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        values = np.asarray(values, dtype=self.dtype)
        if values.shape != (user_ids.size, self.dim):
            raise ValueError(
                f"values shape {values.shape} does not match "
                f"({user_ids.size}, {self.dim})"
            )
        for index, positions, local in self._by_shard(user_ids):
            self._open(index)[local] = values[positions]
        self.writes += int(user_ids.size)

    # ------------------------------------------------------------------
    # Accounting / lifecycle
    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """Bytes of user state currently mapped (bounded by the LRU cap)."""
        return sum(shard.nbytes for shard in self._open_shards.values())

    @property
    def resident_budget_bytes(self) -> int:
        """The hard ceiling ``resident_bytes`` can ever reach."""
        return self.max_open_shards * self.shard_size * self.dim * self.dtype.itemsize

    @property
    def dense_equivalent_bytes(self) -> int:
        """What one dense in-RAM table of this population would cost."""
        return self.num_users * self.dim * self.dtype.itemsize

    def created_shard_indices(self) -> List[int]:
        indices = []
        for name in sorted(os.listdir(self.directory)):
            if name.startswith("users_") and name.endswith(".npy"):
                indices.append(int(name[len("users_"):-len(".npy")]))
        return indices

    def digest(self) -> str:
        """SHA-256 over every materialised shard, in shard order.

        Untouched shards are pure functions of ``(seed, index)`` and
        never materialise, so hashing the created ones pins the full
        reachable state.
        """
        self.flush()
        digest = hashlib.sha256(
            f"{self.num_users}:{self.dim}:{self.seed}".encode()
        )
        for index in self.created_shard_indices():
            digest.update(f"shard:{index}".encode())
            shard = np.load(self._shard_path(index), mmap_mode="r")
            digest.update(np.ascontiguousarray(shard).tobytes())
            del shard
        return digest.hexdigest()

    def flush(self) -> None:
        for shard in self._open_shards.values():
            shard.flush()

    def close(self) -> None:
        self.flush()
        self._open_shards.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "num_users": self.num_users,
            "num_shards": self.num_shards,
            "shards_created": self.shards_created,
            "peak_open_shards": self.peak_open_shards,
            "resident_bytes": self.resident_bytes,
            "resident_budget_bytes": self.resident_budget_bytes,
            "dense_equivalent_bytes": self.dense_equivalent_bytes,
            "rows_read": self.reads,
            "rows_written": self.writes,
        }
