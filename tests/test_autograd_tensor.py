"""Tests for the Tensor type: arithmetic, broadcasting, reductions, shape ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, no_grad
from repro.autograd.tensor import unbroadcast


def small_arrays(max_side=4):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=max_side),
        elements=st.floats(-10, 10, allow_nan=False),
    )


class TestConstruction:
    def test_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_from_int_array_promotes_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.data.dtype == np.float64

    def test_scalar_item(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data  # shares storage

    def test_len_and_repr(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        assert len(t) == 2
        assert "requires_grad=True" in repr(t)


class TestArithmeticForward:
    def test_add_sub_mul_div(self):
        a = Tensor([2.0, 4.0])
        b = Tensor([1.0, 2.0])
        assert np.allclose((a + b).data, [3, 6])
        assert np.allclose((a - b).data, [1, 2])
        assert np.allclose((a * b).data, [2, 8])
        assert np.allclose((a / b).data, [2, 2])

    def test_scalar_operands(self):
        a = Tensor([2.0])
        assert np.allclose((a + 1).data, [3])
        assert np.allclose((1 + a).data, [3])
        assert np.allclose((3 - a).data, [1])
        assert np.allclose((a * 2).data, [4])
        assert np.allclose((4 / a).data, [2])
        assert np.allclose((-a).data, [-2])

    def test_pow(self):
        a = Tensor([2.0, 3.0])
        assert np.allclose((a**2).data, [4, 9])
        assert np.allclose((a**0.5).data, np.sqrt([2, 3]))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[3.0], [4.0]])
        assert np.allclose((a @ b).data, [[11.0]])


class TestBackwardExactness:
    def test_add_broadcast_bias(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.zeros(2), requires_grad=True)
        (x + b).sum().backward()
        assert np.allclose(x.grad, np.ones((3, 2)))
        assert np.allclose(b.grad, [3.0, 3.0])  # summed over broadcast axis

    def test_mul_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5, 7])
        assert np.allclose(b.grad, [2, 3])

    def test_div_gradient(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-6.0 / 4.0])

    def test_matmul_gradient(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        w = Tensor([[3.0], [4.0]], requires_grad=True)
        (a @ w).sum().backward()
        assert np.allclose(a.grad, [[3.0, 4.0]])
        assert np.allclose(w.grad, [[1.0], [2.0]])

    def test_reused_tensor_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        ((a * a) + a).sum().backward()  # d/da (a² + a) = 2a + 1 = 5
        assert np.allclose(a.grad, [5.0])

    def test_diamond_graph(self):
        # y = (a + a) * a = 2a²; dy/da = 4a
        a = Tensor([3.0], requires_grad=True)
        ((a + a) * a).sum().backward()
        assert np.allclose(a.grad, [12.0])

    def test_backward_requires_scalar_without_grad_arg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_explicit_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2).backward(np.array([1.0, 10.0]))
        assert np.allclose(a.grad, [2.0, 20.0])

    def test_backward_gradient_shape_mismatch(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward(np.array([1.0]))

    def test_backward_on_non_grad_tensor(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestUnaryOps:
    def test_exp_log_roundtrip(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose(a.exp().log().data, a.data)

    def test_sigmoid_extremes_are_finite(self):
        out = Tensor([1000.0, -1000.0]).sigmoid()
        assert np.all(np.isfinite(out.data))
        assert np.allclose(out.data, [1.0, 0.0])

    def test_tanh_gradient(self):
        a = Tensor([0.5], requires_grad=True)
        a.tanh().sum().backward()
        assert np.allclose(a.grad, 1 - np.tanh(0.5) ** 2)

    def test_relu_masks_negative(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])

    def test_abs_gradient_sign(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        assert np.allclose(a.grad, [-1.0, 1.0])

    def test_clip_gradient_passthrough_inside_only(self):
        a = Tensor([-5.0, 0.5, 5.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=0, keepdims=True)
        assert out.shape == (1, 3)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_sum_negative_axis(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.sum(axis=-1).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient_scaling(self):
        a = Tensor(np.ones((4,)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(a.mean(axis=0).data, [1.5, 2.5, 3.5])

    def test_var_matches_numpy(self):
        values = np.array([[1.0, 4.0], [3.0, 8.0], [5.0, 0.0]])
        assert np.allclose(Tensor(values).var(axis=0).data, values.var(axis=0))


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_transpose_gradient(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (a.T * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        assert a.grad.shape == (2, 3)

    def test_getitem_rows(self):
        a = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        a[1:3].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3] = 1.0
        assert np.allclose(a.grad, expected)

    def test_getitem_column_prefix(self):
        a = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        a[:, :2].sum().backward()
        expected = np.zeros((4, 3))
        expected[:, :2] = 1.0
        assert np.allclose(a.grad, expected)

    def test_getitem_duplicate_fancy_indices_accumulate(self):
        a = Tensor(np.zeros((3, 2)), requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(a.grad[:, 0], [2.0, 0.0, 1.0])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_no_grad_restores_on_exit(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        assert (a * 2).requires_grad

    def test_no_grad_restores_on_exception(self):
        a = Tensor([1.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert (a * 2).requires_grad


class TestUnbroadcast:
    @given(small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_identity_when_shapes_match(self, values):
        assert np.array_equal(unbroadcast(values, values.shape), values)

    def test_sums_prepended_axes(self):
        grad = np.ones((5, 3))
        assert np.allclose(unbroadcast(grad, (3,)), np.full(3, 5.0))

    def test_sums_stretched_axes(self):
        grad = np.ones((4, 3))
        assert np.allclose(unbroadcast(grad, (1, 3)), np.full((1, 3), 4.0))

    @given(small_arrays(max_side=3))
    @settings(max_examples=25, deadline=None)
    def test_broadcast_mul_gradient_matches_manual(self, values):
        # x * ones_like_broadcast: gradient of broadcast operand is the sum.
        if values.ndim != 2:
            return
        row = Tensor(values[:1].copy(), requires_grad=True)
        full = Tensor(np.ones_like(values))
        (row * full).sum().backward()
        assert np.allclose(row.grad, np.full_like(values[:1], values.shape[0]))
