"""Tests for the contract lint framework (``repro.analysis``).

Each rule gets a fixture pair: a violating snippet (the rule must fire)
and a compliant twin (it must stay silent).  On top of the per-rule
fixtures: suppression pragmas, baseline semantics, the CLI exit codes,
and the meta-test that the real tree lints clean — plus red-on-injection,
which proves the clean result is the linter passing, not the linter
being inert.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    lint_paths,
    lint_source,
    rule_catalogue,
)
from repro.analysis.framework import BASELINE_DEFAULT

REPO_ROOT = Path(__file__).resolve().parent.parent

SEEDED = "repro/federated/example.py"   # inside determinism scope
SERVING = "repro/serving/example.py"    # inside lock scope


def findings_for(source, logical, rule):
    return lint_source(source, logical=logical, rules=[rule])


def rules_fired(source, logical, rule):
    return [f.rule for f in findings_for(source, logical, rule)]


# ---------------------------------------------------------------------------
# Framework basics
# ---------------------------------------------------------------------------
class TestFramework:
    def test_catalogue_has_the_six_contract_rules(self):
        assert set(rule_catalogue()) >= {
            "determinism", "sparse-contract", "atomic-write",
            "lock-discipline", "rng-registration", "facade-only",
        }
        for name, cls in rule_catalogue().items():
            assert cls.description, name

    def test_unknown_rule_name_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            lint_source("x = 1", logical=SEEDED, rules=["no-such-rule"])

    def test_syntax_error_becomes_parse_error_finding(self):
        found = lint_source("def broken(:\n", logical=SEEDED)
        assert [f.rule for f in found] == ["parse-error"]

    def test_findings_sorted_and_carry_location(self):
        src = (
            "import time\n"
            "import random\n"
            "a = time.time()\n"
        )
        found = lint_source(src, logical=SEEDED, rules=["determinism"])
        assert [f.line for f in found] == sorted(f.line for f in found)
        assert all(f.path and f.line >= 1 for f in found)

    def test_fingerprint_stable_across_line_churn(self):
        src = "import time\nx = time.time()\n"
        moved = "import time\n\n\n\nx = time.time()\n"
        fp = findings_for(src, SEEDED, "determinism")[-1].fingerprint()
        fp_moved = findings_for(moved, SEEDED, "determinism")[-1].fingerprint()
        assert fp == fp_moved

    def test_fingerprint_differs_across_source_text(self):
        src = "import random\nx = time.time()\n"
        f1, f2 = findings_for(src, SEEDED, "determinism")
        assert f1.fingerprint() != f2.fingerprint()


# ---------------------------------------------------------------------------
# Rule: determinism
# ---------------------------------------------------------------------------
class TestDeterminismRule:
    def test_unseeded_default_rng_fires(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_fired(src, SEEDED, "determinism") == ["determinism"]

    def test_seeded_default_rng_is_silent(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "rng2 = np.random.default_rng(seed=7)\n"
        )
        assert rules_fired(src, SEEDED, "determinism") == []

    def test_legacy_global_numpy_fires(self):
        src = "import numpy as np\nx = np.random.normal(size=3)\n"
        assert rules_fired(src, SEEDED, "determinism") == ["determinism"]

    def test_stdlib_random_import_and_call_fire(self):
        src = "import random\nx = random.random()\n"
        assert rules_fired(src, SEEDED, "determinism") == [
            "determinism", "determinism",
        ]

    def test_wall_clock_fires_but_monotonic_is_legal(self):
        bad = "import time\nt = time.time()\n"
        good = "import time\nt = time.monotonic()\ns = time.perf_counter()\n"
        assert rules_fired(bad, SEEDED, "determinism") == ["determinism"]
        assert rules_fired(good, SEEDED, "determinism") == []

    def test_datetime_now_fires(self):
        src = "from datetime import datetime\nt = datetime.now()\n"
        assert rules_fired(src, SEEDED, "determinism") == ["determinism"]

    def test_outside_seeded_scope_is_silent(self):
        src = "import time\nt = time.time()\n"
        assert rules_fired(src, "repro/serving/http.py", "determinism") == []


# ---------------------------------------------------------------------------
# Rule: sparse-contract
# ---------------------------------------------------------------------------
class TestSparseContractRule:
    def test_dense_call_fires(self):
        src = "def f(delta):\n    return delta.dense()\n"
        assert rules_fired(src, SEEDED, "sparse-contract") == ["sparse-contract"]

    def test_asarray_on_delta_fires(self):
        src = "import numpy as np\ndef f(update):\n    return np.asarray(update)\n"
        assert rules_fired(src, SEEDED, "sparse-contract") == ["sparse-contract"]

    def test_isinstance_dispatch_idiom_is_compliant(self):
        src = (
            "import numpy as np\n"
            "def f(delta):\n"
            "    if isinstance(delta, SparseRowDelta):\n"
            "        return delta.rows\n"
            "    return np.asarray(delta)\n"
        )
        assert rules_fired(src, SEEDED, "sparse-contract") == []

    def test_asarray_on_unrelated_value_is_silent(self):
        src = "import numpy as np\ndef f(matrix):\n    return np.asarray(matrix)\n"
        assert rules_fired(src, SEEDED, "sparse-contract") == []

    def test_allowlisted_file_is_silent(self):
        src = "def f(delta):\n    return delta.dense()\n"
        assert rules_fired(
            src, "repro/federated/payload.py", "sparse-contract"
        ) == []


# ---------------------------------------------------------------------------
# Rule: atomic-write
# ---------------------------------------------------------------------------
class TestAtomicWriteRule:
    def test_direct_write_to_checkpoint_path_fires(self):
        src = 'with open("model_checkpoint.npz", "wb") as fh:\n    fh.write(b"x")\n'
        assert rules_fired(src, SEEDED, "atomic-write") == ["atomic-write"]

    def test_write_via_assigned_name_fires(self):
        src = (
            "import os\n"
            "def save(workdir, blob):\n"
            '    path = os.path.join(workdir, "run.npz")\n'
            '    with open(path, "wb") as fh:\n'
            "        fh.write(blob)\n"
        )
        assert rules_fired(src, SEEDED, "atomic-write") == ["atomic-write"]

    def test_read_mode_is_silent(self):
        src = 'with open("model_checkpoint.npz", "rb") as fh:\n    fh.read()\n'
        assert rules_fired(src, SEEDED, "atomic-write") == []

    def test_unrelated_path_is_silent(self):
        src = 'with open("notes.txt", "w") as fh:\n    fh.write("hi")\n'
        assert rules_fired(src, SEEDED, "atomic-write") == []

    def test_mkstemp_fdopen_pattern_is_silent(self):
        # The blessed helper: mkstemp + os.fdopen + os.replace never
        # calls builtin open() on the final path.
        src = (
            "import os, tempfile\n"
            "def save(cache_path, blob):\n"
            "    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(cache_path))\n"
            '    with os.fdopen(fd, "wb") as fh:\n'
            "        fh.write(blob)\n"
            "    os.replace(tmp, cache_path)\n"
        )
        assert rules_fired(src, SEEDED, "atomic-write") == []


# ---------------------------------------------------------------------------
# Rule: lock-discipline
# ---------------------------------------------------------------------------
LOCKED_CLASS = (
    "import threading\n"
    "class Service:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._hits = 0\n"
    "    def record(self):\n"
    "        with self._lock:\n"
    "            self._hits += 1\n"
    "{extra}"
)


class TestLockDisciplineRule:
    def test_mixed_guarded_unguarded_write_fires(self):
        src = LOCKED_CLASS.format(extra=(
            "    def reset(self):\n"
            "        self._hits = 0\n"
        ))
        found = findings_for(src, SERVING, "lock-discipline")
        assert [f.rule for f in found] == ["lock-discipline"]
        assert "_hits" in found[0].message

    def test_always_guarded_is_silent(self):
        src = LOCKED_CLASS.format(extra=(
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self._hits = 0\n"
        ))
        assert rules_fired(src, SERVING, "lock-discipline") == []

    def test_init_writes_are_exempt(self):
        assert rules_fired(
            LOCKED_CLASS.format(extra=""), SERVING, "lock-discipline"
        ) == []

    def test_locked_suffix_methods_are_exempt(self):
        src = LOCKED_CLASS.format(extra=(
            "    def _reset_locked(self):\n"
            "        self._hits = 0\n"
        ))
        assert rules_fired(src, SERVING, "lock-discipline") == []

    def test_condition_wrapping_lock_counts_as_guarded(self):
        src = (
            "import threading\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._wakeup = threading.Condition(self._lock)\n"
            "        self._n = 0\n"
            "    def a(self):\n"
            "        with self._wakeup:\n"
            "            self._n += 1\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
        )
        assert rules_fired(src, SERVING, "lock-discipline") == []

    def test_tuple_unpacking_write_is_seen(self):
        src = LOCKED_CLASS.format(extra=(
            "    def take(self):\n"
            "        taken, self._hits = self._hits, 0\n"
            "        return taken\n"
        ))
        assert rules_fired(src, SERVING, "lock-discipline") == ["lock-discipline"]

    def test_outside_serving_is_silent(self):
        src = LOCKED_CLASS.format(extra=(
            "    def reset(self):\n"
            "        self._hits = 0\n"
        ))
        assert rules_fired(src, SEEDED, "lock-discipline") == []


# ---------------------------------------------------------------------------
# Rule: rng-registration
# ---------------------------------------------------------------------------
class TestRngRegistrationRule:
    def test_unregistered_generator_in_subclass_fires(self):
        src = (
            "import numpy as np\n"
            "class Attacker(FederatedTrainer):\n"
            "    def __init__(self, seed):\n"
            "        self._attack_rng = np.random.default_rng(seed)\n"
        )
        found = findings_for(src, SEEDED, "rng-registration")
        assert [f.rule for f in found] == ["rng-registration"]
        assert "_attack_rng" in found[0].message

    def test_registered_generator_is_silent(self):
        src = (
            "import numpy as np\n"
            "class Attacker(FederatedTrainer):\n"
            "    def __init__(self, seed):\n"
            "        self._attack_rng = np.random.default_rng(seed)\n"
            "    def _checkpoint_rngs(self):\n"
            "        rngs = super()._checkpoint_rngs()\n"
            '        rngs["attack"] = self._attack_rng\n'
            "        return rngs\n"
        )
        assert rules_fired(src, SEEDED, "rng-registration") == []

    def test_partial_registration_flags_only_missing(self):
        src = (
            "import numpy as np\n"
            "class T(FederatedTrainer):\n"
            "    def __init__(self):\n"
            "        self._a = np.random.default_rng(0)\n"
            "        self._b = np.random.default_rng(1)\n"
            "    def _checkpoint_rngs(self):\n"
            '        return {"a": self._a}\n'
        )
        found = findings_for(src, SEEDED, "rng-registration")
        assert len(found) == 1 and "_b" in found[0].message

    def test_non_trainer_class_is_silent(self):
        src = (
            "import numpy as np\n"
            "class Sampler:\n"
            "    def __init__(self, seed):\n"
            "        self._rng = np.random.default_rng(seed)\n"
        )
        assert rules_fired(src, SEEDED, "rng-registration") == []


# ---------------------------------------------------------------------------
# Rule: facade-only
# ---------------------------------------------------------------------------
class TestFacadeOnlyRule:
    def test_deep_import_in_example_fires(self):
        src = "from repro.federated.trainer import FederatedTrainer\n"
        assert rules_fired(src, "examples/demo.py", "facade-only") == ["facade-only"]

    def test_import_repro_module_fires(self):
        assert rules_fired(
            "import repro.api\n", "examples/demo.py", "facade-only"
        ) == ["facade-only"]

    def test_facade_import_is_silent(self):
        src = "from repro.api import fit, recommend\nimport numpy as np\n"
        assert rules_fired(src, "examples/demo.py", "facade-only") == []

    def test_src_tree_is_out_of_scope(self):
        src = "from repro.federated.trainer import FederatedTrainer\n"
        assert rules_fired(src, SEEDED, "facade-only") == []


# ---------------------------------------------------------------------------
# Suppression pragmas
# ---------------------------------------------------------------------------
class TestSuppression:
    BAD = "import time\nt = time.time()  # repro-lint: disable=determinism\n"

    def test_inline_pragma_silences_named_rule(self):
        assert rules_fired(self.BAD, SEEDED, "determinism") == []

    def test_pragma_for_other_rule_does_not_silence(self):
        src = "import time\nt = time.time()  # repro-lint: disable=atomic-write\n"
        assert rules_fired(src, SEEDED, "determinism") == ["determinism"]

    def test_comment_line_above_extends_to_next_statement(self):
        src = (
            "import time\n"
            "# justified: display only  # repro-lint: disable=determinism\n"
            "t = time.time()\n"
        )
        assert rules_fired(src, SEEDED, "determinism") == []

    def test_disable_all_wildcard(self):
        src = "import time\nt = time.time()  # repro-lint: disable=all\n"
        assert rules_fired(src, SEEDED, "determinism") == []

    def test_file_pragma_in_header_silences_whole_file(self):
        src = (
            "# repro-lint: disable-file=determinism\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        assert rules_fired(src, SEEDED, "determinism") == []

    def test_file_pragma_outside_header_window_is_ignored(self):
        src = "\n" * 12 + (
            "# repro-lint: disable-file=determinism\n"
            "import time\n"
            "t = time.time()\n"
            "u = time.time()\n"
        )
        assert rules_fired(src, SEEDED, "determinism") == [
            "determinism", "determinism",
        ]


# ---------------------------------------------------------------------------
# Baseline semantics
# ---------------------------------------------------------------------------
class TestBaseline:
    SRC = "import random\nt = time.time()\n"

    def _findings(self):
        return findings_for(self.SRC, SEEDED, "determinism")

    def test_from_findings_grandfathers_exactly_those(self):
        findings = self._findings()
        baseline = Baseline.from_findings(findings)
        new, old = baseline.split(findings)
        assert new == [] and len(old) == len(findings)

    def test_new_instance_of_old_pattern_still_fails(self):
        findings = self._findings()
        baseline = Baseline.from_findings(findings)
        doubled = "import random\nt = time.time()\nu = time.time()\n"
        new, old = baseline.split(
            findings_for(doubled, SEEDED, "determinism")
        )
        # the import + one time.time() are grandfathered; the extra
        # time.time() has a distinct source line, so it is new
        assert len(new) == 1 and "u = time.time()" in new[0].source_line

    def test_roundtrip_through_disk(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(str(path))
        loaded = Baseline.load(str(path))
        new, old = loaded.split(findings)
        assert new == [] and len(old) == len(findings)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        for entry in payload["findings"].values():
            assert {"rule", "path", "message", "count", "justification"} <= set(entry)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": {}}')
        with pytest.raises(ValueError, match="unsupported version"):
            Baseline.load(str(path))

    def test_empty_baseline_grandfathers_nothing(self):
        new, old = Baseline().split(self._findings())
        assert old == [] and len(new) == 2

    def test_committed_baseline_is_empty(self):
        payload = json.loads((REPO_ROOT / BASELINE_DEFAULT).read_text())
        assert payload == {"version": 1, "findings": {}}


# ---------------------------------------------------------------------------
# CLI + the merge bar
# ---------------------------------------------------------------------------
def run_cli(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCli:
    def test_repo_tree_lints_clean(self):
        """The merge bar: `repro lint src examples` exits 0 on this tree."""
        proc = run_cli("src", "examples")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_json_report_shape(self):
        proc = run_cli("src", "examples", "--json")
        payload = json.loads(proc.stdout)
        assert payload["exit_code"] == 0
        assert payload["findings"] == []
        assert payload["files"] > 100

    def test_red_on_injection(self, tmp_path):
        """Planting a violation turns the lint (and thus CI) red."""
        bad = tmp_path / "src" / "repro" / "federated" / "planted.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        proc = run_cli(str(bad))
        assert proc.returncode == 1
        assert "determinism" in proc.stdout

    def test_rule_filter(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "federated" / "planted.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        proc = run_cli(str(bad), "--rule", "atomic-write")
        assert proc.returncode == 0

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for name in ("determinism", "lock-discipline", "facade-only"):
            assert name in proc.stdout

    def test_missing_path_exits_2(self):
        proc = run_cli("no/such/dir")
        assert proc.returncode == 2

    def test_write_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "federated" / "planted.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "baseline.json"
        proc = run_cli(str(bad), "--write-baseline", str(baseline))
        assert proc.returncode == 0
        proc = run_cli(str(bad), "--baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout
        # a NEW violation on top of the baselined ones still fails
        bad.write_text("import time\nt = time.time()\nu = time.time()\n")
        proc = run_cli(str(bad), "--baseline", str(baseline))
        assert proc.returncode == 1


# ---------------------------------------------------------------------------
# Library-level sweep (no subprocess): mirrors the CI job
# ---------------------------------------------------------------------------
class TestTreeSweep:
    def test_lint_paths_over_real_tree(self):
        report = lint_paths(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "examples")]
        )
        assert report.exit_code == 0, "\n".join(
            f.render() for f in report.findings
        )
        # exactly one documented inline suppression (chaos torn-writer)
        assert report.suppressed == 1
