"""Fig. 1 — distribution of users' interaction counts.

Renders the per-dataset histogram as ASCII bars and reports the
dispersion statistics the paper's introduction quotes (std vs average) —
the quantitative motivation for model heterogeneity.
"""

from __future__ import annotations

from typing import Dict, List


from repro.data.stats import interaction_histogram, tail_heaviness
from repro.data.synthetic import DATASET_SPECS, load_benchmark_dataset
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.reporting import ascii_bar


def run_fig1(
    profile: str | ExperimentProfile = "bench", bins: int = 12
) -> Dict[str, dict]:
    """Histogram + dispersion stats per dataset."""
    prof = profile if isinstance(profile, ExperimentProfile) else get_profile(profile)
    out: Dict[str, dict] = {}
    for name in DATASET_SPECS:
        dataset = load_benchmark_dataset(name, prof.synthetic_config())
        edges, hist = interaction_histogram(dataset, bins=bins)
        counts = dataset.interaction_counts().astype(float)
        out[name] = {
            "edges": edges,
            "hist": hist,
            "std": float(counts.std()),
            "avg": float(counts.mean()),
            "tail_heaviness": tail_heaviness(dataset),
        }
    return out


def format_fig1(results: Dict[str, dict]) -> str:
    lines: List[str] = ["Fig. 1: distribution of users' interaction numbers"]
    for name, result in results.items():
        lines.append(
            f"\n{name}: std={result['std']:.1f} avg={result['avg']:.1f} "
            f"(std/avg={result['std'] / result['avg']:.2f}, "
            f"{100 * result['tail_heaviness']:.0f}% of users below the mean)"
        )
        peak = max(int(h) for h in result["hist"]) or 1
        for left, right, height in zip(
            result["edges"][:-1], result["edges"][1:], result["hist"]
        ):
            bar = ascii_bar(float(height), float(peak), width=40)
            lines.append(f"  [{left:6.0f},{right:6.0f})  {int(height):4d}  {bar}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_fig1(run_fig1()))
