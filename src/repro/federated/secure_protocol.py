"""Phased secure aggregation: explicit server/client state machines.

The single-shot session in :mod:`repro.federated.secure_agg` plays both
sides of the masking protocol and receives dropouts as a fait-accompli
argument.  This module implements the protocol the paper's privacy
argument actually needs — Bonawitz et al. (CCS 2017) — as four explicit
phases with separate :class:`SecureAggregationClient` and
:class:`SecureAggregationServer` state machines, so clients can fail at
*any* point and the server must resolve every case deterministically:

``advertise``
    Every invited client publishes its per-round public keys: a
    Diffie–Hellman mask key over the Shamir prime field (``g^k mod p``),
    a commitment to its self-mask seed, and a MAC verification key
    (stdlib ``hashlib``/``hmac`` stand-in for the signing keypair).
``shares``
    Each roster member splits its DH secret *and* its self-mask seed
    into Shamir t-of-n shares (pure-python over ``p = 2^127 − 1``) and
    sends one pair of shares per fellow member through the server (the
    real protocol encrypts these; the server here relays them opaquely
    and only ever reconstructs through :meth:`~SecureAggregationServer.
    finalize`, which enforces the reveal rules).
``masked_input``
    Each client that received shares uploads its update as a
    double-masked fixed-point vector over the sparse-delta wire layout:
    ``encode(x_u) + PRG(b_u) + Σ_{u<v} PRG(s_uv) − Σ_{v<u} PRG(s_uv)``
    with pairwise seeds ``s_uv`` from DH key agreement and a per-client
    self-mask seed ``b_u``, plus an HMAC over the vector.
``unmask``
    The server announces the survivor set; each responding survivor
    signs it (consistency check) and reveals, per fellow participant,
    *either* the self-mask share (survivors) *or* the DH-secret share
    (dropouts) — never both, enforced on the client.  With ≥ t
    responses the server reconstructs dropouts' pairwise seeds and
    survivors' self-masks, strips the dangling masks and decodes the
    exact fixed-point sum of the survivors' updates.

Dropping below the survivor threshold at any phase raises no further
work: the round reports ``aborted`` and the caller (the trainer) routes
the updates into the availability/straggler path instead of crashing.

Duplicates are resolved first-message-wins; messages arriving after a
phase closed are rejected and counted, never applied.  All derived
secrets are hash-derived from ``(config.seed, round_id, client_id)`` —
the protocol consumes **no** RNG streams, so enabling it leaves every
checkpointed generator untouched and the bitwise-resume contract holds.

Exactness: with zero dropouts the decoded sum is bitwise-identical to
:func:`repro.federated.secure_agg.secure_aggregate_updates` — the same
codec quantises, and every mask cancels exactly in the 2^64 field.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.federated.payload import ClientUpdate
from repro.federated.secure_agg import (
    FixedPointCodec,
    SecureAggregationConfig,
    _flatten_update,
    _round_layout,
    _unflatten_sum,
    pairwise_mask,
)

_FIELD_DTYPE = np.uint64

#: Protocol phases, in wire order.
ADVERTISE, SHARES, MASKED_INPUT, UNMASK = (
    "advertise", "shares", "masked_input", "unmask",
)
PHASES = (ADVERTISE, SHARES, MASKED_INPUT, UNMASK)

#: Shamir/DH field: the 12th Mersenne prime.  Big enough to hold any
#: 64-bit secret, small enough that pure-python modexp stays cheap.
SHAMIR_PRIME = 2**127 - 1
#: Diffie–Hellman generator (any small primitive-ish element works for
#: the simulation; security is not load-bearing at this field size).
DH_GENERATOR = 5

# Wire costs in scalar-equivalents (the unit every accounting surface of
# this repo uses; one scalar = 8 bytes).  A 127-bit field element is two
# scalars, a share is (x, y) with a shared 64-bit x coordinate, a MAC /
# signature is four scalars (SHA-256).
_WIRE_PUBKEYS = 5.0        # DH pubkey (2) + seed commitment (1) + MAC key (2)
_WIRE_SHARE_PAIR = 5.0     # x (1) + key share y (2) + self share y (2)
_WIRE_MAC = 4.0
_WIRE_SIGNATURE = 4.0


class ProtocolError(RuntimeError):
    """A message or reveal request that violates the protocol rules."""


class SecureRoundAbort(RuntimeError):
    """Survivors fell below the reconstruction threshold mid-round."""

    def __init__(self, phase: str, survivors: int, threshold: int) -> None:
        super().__init__(
            f"secure round aborted at phase {phase!r}: "
            f"{survivors} survivors < threshold {threshold}"
        )
        self.phase = phase
        self.survivors = survivors
        self.threshold = threshold


# ----------------------------------------------------------------------
# Hash-derived secrets and Shamir sharing over the prime field
# ----------------------------------------------------------------------
def _digest_int(*parts: object, bits: int = 64) -> int:
    """Deterministic integer from a labelled SHA-256 digest."""
    data = ":".join(str(part) for part in parts).encode()
    digest = hashlib.sha256(data).digest()
    return int.from_bytes(digest[: bits // 8], "little")


def _prg_seed(*parts: object) -> int:
    """64-bit PRG seed from protocol material (feeds ``pairwise_mask``)."""
    return _digest_int("prg", *parts, bits=64)


def shamir_share(
    secret: int, xs: Sequence[int], threshold: int, salt: str
) -> Dict[int, int]:
    """t-of-n shares of ``secret`` at x-coordinates ``xs``.

    Polynomial coefficients are hash-derived from the secret itself (the
    dealer's entropy), not from an RNG stream — sharing is a pure
    function, which keeps checkpoint/resume oblivious to the protocol.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    if len(set(xs)) != len(xs):
        raise ValueError("share x-coordinates must be unique")
    coefficients = [secret % SHAMIR_PRIME]
    for index in range(1, threshold):
        coefficients.append(
            _digest_int(salt, secret, "coeff", index, bits=128) % SHAMIR_PRIME
        )
    shares: Dict[int, int] = {}
    for x in xs:
        if not 1 <= int(x) < SHAMIR_PRIME:
            raise ValueError(f"share x-coordinate must be in [1, p), got {x}")
        value = 0
        for coefficient in reversed(coefficients):  # Horner
            value = (value * int(x) + coefficient) % SHAMIR_PRIME
        shares[int(x)] = value
    return shares


def shamir_reconstruct(shares: Mapping[int, int]) -> int:
    """Lagrange interpolation at 0 over the prime field."""
    if not shares:
        raise ValueError("cannot reconstruct from zero shares")
    points = sorted(shares.items())
    total = 0
    for i, (xi, yi) in enumerate(points):
        numerator = denominator = 1
        for j, (xj, _) in enumerate(points):
            if i == j:
                continue
            numerator = (numerator * (-xj)) % SHAMIR_PRIME
            denominator = (denominator * (xi - xj)) % SHAMIR_PRIME
        total = (
            total + yi * numerator * pow(denominator, -1, SHAMIR_PRIME)
        ) % SHAMIR_PRIME
    return total


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KeyAdvertisement:
    """Round 0: one client's per-round public material."""

    client_id: int
    round_id: int
    dh_public: int          # g^k mod p — pairwise seed agreement
    self_commitment: int    # H(self-mask seed) — integrity of recovery
    mac_key: int            # verification key stand-in (see module doc)


@dataclass(frozen=True)
class SeedShare:
    """Round 1: one sender→receiver pair of Shamir shares (server-relayed)."""

    sender: int
    receiver: int
    x: int
    key_share: int   # share of the sender's DH secret
    self_share: int  # share of the sender's self-mask seed


@dataclass(frozen=True)
class MaskedInput:
    """Round 2: the double-masked fixed-point vector plus its MAC."""

    client_id: int
    round_id: int
    vector: np.ndarray
    mac: str


@dataclass(frozen=True)
class UnmaskShares:
    """Round 3: a survivor's consistency signature and share reveals."""

    client_id: int
    survivor_signature: str
    #: ``{survivor_id: self-mask share}`` — only for clients that delivered.
    self_shares: Mapping[int, Tuple[int, int]]
    #: ``{dropout_id: DH-secret share}`` — only for clients that vanished.
    key_shares: Mapping[int, Tuple[int, int]]


def _survivor_digest(mac_key: int, round_id: int, survivors: Sequence[int]) -> str:
    payload = f"{round_id}:" + ",".join(str(s) for s in sorted(survivors))
    return hmac.new(
        str(mac_key).encode(), payload.encode(), hashlib.sha256
    ).hexdigest()


def _vector_mac(mac_key: int, round_id: int, vector: np.ndarray) -> str:
    mac = hmac.new(str(mac_key).encode(), digestmod=hashlib.sha256)
    mac.update(str(round_id).encode())
    mac.update(np.ascontiguousarray(vector).tobytes())
    return mac.hexdigest()


# ----------------------------------------------------------------------
# Client state machine
# ----------------------------------------------------------------------
class SecureAggregationClient:
    """One client's view of a masking round.

    All secrets derive from ``(config.seed, round_id, client_id)`` —
    ``config.seed`` models the client's long-term key material (the
    server classes never touch it).  The client walks the same phase
    ladder as the server and refuses out-of-order calls.
    """

    def __init__(
        self, client_id: int, round_id: int, config: SecureAggregationConfig
    ) -> None:
        self.client_id = int(client_id)
        self.round_id = int(round_id)
        self.config = config
        root = config.seed
        # Nonzero DH exponent below the prime.
        self.dh_secret = (
            _digest_int(root, "dh", round_id, client_id, bits=120) % (SHAMIR_PRIME - 2)
        ) + 1
        self.self_seed = _digest_int(root, "self", round_id, client_id, bits=64)
        self.mac_key = _digest_int(root, "mac", round_id, client_id, bits=128)
        self.codec = FixedPointCodec(config.precision_bits, config.clip_range)
        self.phase = ADVERTISE
        self._roster: List[int] = []
        self._threshold = 0
        self._x_of: Dict[int, int] = {}
        self._share_roster: List[int] = []
        self._received_shares: Dict[int, SeedShare] = {}
        self._dh_publics: Dict[int, int] = {}

    # -- round 0 -------------------------------------------------------
    def advertise(self) -> KeyAdvertisement:
        self._require_phase(ADVERTISE)
        self.phase = SHARES
        return KeyAdvertisement(
            client_id=self.client_id,
            round_id=self.round_id,
            dh_public=pow(DH_GENERATOR, self.dh_secret, SHAMIR_PRIME),
            self_commitment=_digest_int("commit", self.self_seed, bits=64),
            mac_key=self.mac_key,
        )

    # -- round 1 -------------------------------------------------------
    def make_shares(
        self,
        roster: Sequence[int],
        threshold: int,
        advertisements: Mapping[int, KeyAdvertisement],
    ) -> List[SeedShare]:
        """Split both secrets t-of-n across the advertised roster."""
        self._require_phase(SHARES)
        if self.client_id not in roster:
            raise ProtocolError(
                f"client {self.client_id} asked to share outside its roster"
            )
        self._roster = sorted(int(r) for r in roster)
        self._threshold = int(threshold)
        # x-coordinates from roster order: both endpoints compute the
        # same mapping, so shares line up without extra wire traffic.
        self._x_of = {uid: i + 1 for i, uid in enumerate(self._roster)}
        self._dh_publics = {
            uid: advertisements[uid].dh_public for uid in self._roster
        }
        key_shares = shamir_share(
            self.dh_secret, [self._x_of[u] for u in self._roster], threshold,
            salt=f"key:{self.round_id}:{self.client_id}",
        )
        self_shares = shamir_share(
            self.self_seed, [self._x_of[u] for u in self._roster], threshold,
            salt=f"self:{self.round_id}:{self.client_id}",
        )
        return [
            SeedShare(
                sender=self.client_id,
                receiver=uid,
                x=self._x_of[uid],
                key_share=key_shares[self._x_of[uid]],
                self_share=self_shares[self._x_of[uid]],
            )
            for uid in self._roster
        ]

    def receive_shares(
        self, shares: Sequence[SeedShare], share_roster: Sequence[int]
    ) -> None:
        """Store the shares addressed to this client; learn who shared."""
        self._require_phase(SHARES)
        for share in shares:
            if share.receiver != self.client_id:
                raise ProtocolError(
                    f"client {self.client_id} received a share addressed "
                    f"to {share.receiver}"
                )
            self._received_shares[share.sender] = share
        self._share_roster = sorted(int(u) for u in share_roster)
        self.phase = MASKED_INPUT

    # -- round 2 -------------------------------------------------------
    def pair_seed(self, other_id: int) -> int:
        """DH agreement with ``other_id``: ``pk_other^k_self`` folded to 64 bits."""
        shared = pow(self._dh_publics[other_id], self.dh_secret, SHAMIR_PRIME)
        return _prg_seed(shared)

    def masked_input(self, vector: np.ndarray) -> MaskedInput:
        """Encode, double-mask and authenticate this client's flat update."""
        self._require_phase(MASKED_INPUT)
        flat = np.asarray(vector, dtype=np.float64).ravel()
        encoded = self.codec.encode(flat)
        total = encoded + pairwise_mask(
            _prg_seed("selfmask", self.self_seed), self.round_id, flat.size
        )
        for other in self._share_roster:
            if other == self.client_id:
                continue
            mask = pairwise_mask(self.pair_seed(other), self.round_id, flat.size)
            if self.client_id < other:
                total = total + mask
            else:
                total = total - mask
        self.phase = UNMASK
        return MaskedInput(
            client_id=self.client_id,
            round_id=self.round_id,
            vector=total,
            mac=_vector_mac(self.mac_key, self.round_id, total),
        )

    # -- round 3 -------------------------------------------------------
    def unmask_response(
        self, survivors: Sequence[int], dropouts: Sequence[int]
    ) -> UnmaskShares:
        """Reveal self-mask shares for survivors, key shares for dropouts.

        The never-both rule lives here: a client id appearing in both
        lists would let the server recover a *delivered* input (subtract
        the self-mask AND strip the pairwise masks), so the client
        refuses the request outright.
        """
        self._require_phase(UNMASK)
        survivor_set = set(int(s) for s in survivors)
        dropout_set = set(int(d) for d in dropouts)
        overlap = survivor_set & dropout_set
        if overlap:
            raise ProtocolError(
                "refusing unmask request naming clients as both survivor "
                f"and dropout: {sorted(overlap)[:5]}"
            )
        unknown = (survivor_set | dropout_set) - set(self._share_roster)
        if unknown:
            raise ProtocolError(
                f"unmask request names clients outside the share roster: "
                f"{sorted(unknown)[:5]}"
            )
        self_shares = {
            uid: (self._received_shares[uid].x, self._received_shares[uid].self_share)
            for uid in sorted(survivor_set)
            if uid in self._received_shares
        }
        key_shares = {
            uid: (self._received_shares[uid].x, self._received_shares[uid].key_share)
            for uid in sorted(dropout_set)
            if uid in self._received_shares
        }
        return UnmaskShares(
            client_id=self.client_id,
            survivor_signature=_survivor_digest(
                self.mac_key, self.round_id, sorted(survivor_set)
            ),
            self_shares=self_shares,
            key_shares=key_shares,
        )

    def _require_phase(self, phase: str) -> None:
        if self.phase != phase:
            raise ProtocolError(
                f"client {self.client_id} is in phase {self.phase!r}, "
                f"cannot run {phase!r}"
            )


# ----------------------------------------------------------------------
# Server state machine
# ----------------------------------------------------------------------
class SecureAggregationServer:
    """The coordinator's view: collect, dedupe, threshold-check, unmask.

    Each phase accepts messages until the matching ``close_*`` call;
    duplicates are first-message-wins, late or wrong-phase messages are
    rejected and counted (``duplicates_ignored`` / ``late_rejected``),
    unknown senders raise :class:`ProtocolError`.  Every ``close_*``
    enforces the survivor threshold and raises :class:`SecureRoundAbort`
    below it — the server never limps into an unreconstructable state.
    """

    def __init__(
        self,
        expected_ids: Sequence[int],
        vector_size: int,
        round_id: int,
        config: SecureAggregationConfig,
    ) -> None:
        self.expected = sorted(int(u) for u in expected_ids)
        if len(set(self.expected)) != len(self.expected):
            raise ValueError("participant ids must be unique")
        if not self.expected:
            raise ValueError("a secure round needs at least one participant")
        self.vector_size = int(vector_size)
        self.round_id = int(round_id)
        self.config = config
        fraction = getattr(config, "threshold_fraction", 0.5)
        self.threshold = max(1, int(np.ceil(fraction * len(self.expected))))
        self.phase = ADVERTISE
        self.duplicates_ignored = 0
        self.late_rejected = 0
        self.rejected_inputs = 0
        self._advertisements: Dict[int, KeyAdvertisement] = {}
        self._shares_by_sender: Dict[int, List[SeedShare]] = {}
        self._masked: Dict[int, MaskedInput] = {}
        self._unmask: Dict[int, UnmaskShares] = {}
        self.roster: List[int] = []
        self.share_roster: List[int] = []
        self.survivors: List[int] = []
        self.dropouts: List[int] = []
        self.responders: List[int] = []

    # -- generic receive plumbing --------------------------------------
    def _receive(self, phase: str, sender: int, store: Dict, message) -> bool:
        if sender not in self.expected:
            raise ProtocolError(f"message from unknown client {sender}")
        if self.phase != phase:
            self.late_rejected += 1
            return False
        if sender in store:
            self.duplicates_ignored += 1
            return False
        store[sender] = message
        return True

    # -- round 0 -------------------------------------------------------
    def receive_advertisement(self, message: KeyAdvertisement) -> bool:
        if message.round_id != self.round_id:
            self.late_rejected += 1
            return False
        return self._receive(
            ADVERTISE, int(message.client_id), self._advertisements, message
        )

    def close_advertise(self) -> List[int]:
        """Freeze the roster (U1); below-threshold rosters abort."""
        self._require_phase(ADVERTISE)
        self.roster = sorted(self._advertisements)
        if len(self.roster) < self.threshold:
            raise SecureRoundAbort(ADVERTISE, len(self.roster), self.threshold)
        self.phase = SHARES
        return list(self.roster)

    # -- round 1 -------------------------------------------------------
    def receive_shares(self, sender: int, shares: Sequence[SeedShare]) -> bool:
        if any(s.sender != sender for s in shares):
            raise ProtocolError(f"share bundle from {sender} spoofs its sender")
        return self._receive(SHARES, int(sender), self._shares_by_sender, list(shares))

    def close_shares(self) -> List[int]:
        """Freeze the share roster (U2); relay targets become known."""
        self._require_phase(SHARES)
        self.share_roster = sorted(self._shares_by_sender)
        if len(self.share_roster) < self.threshold:
            raise SecureRoundAbort(SHARES, len(self.share_roster), self.threshold)
        self.phase = MASKED_INPUT
        return list(self.share_roster)

    def shares_for(self, receiver: int) -> List[SeedShare]:
        """The relayed (opaque) shares addressed to one client."""
        return [
            share
            for sender in self.share_roster
            for share in self._shares_by_sender[sender]
            if share.receiver == receiver
        ]

    # -- round 2 -------------------------------------------------------
    def receive_masked_input(self, message: MaskedInput) -> bool:
        sender = int(message.client_id)
        if sender in self._advertisements and self.phase == MASKED_INPUT:
            advert = self._advertisements[sender]
            if message.vector.size != self.vector_size or message.mac != _vector_mac(
                advert.mac_key, self.round_id, message.vector
            ):
                # Corrupted or mis-sized input: deterministically treat
                # the client as a dropout for this round.
                self.rejected_inputs += 1
                return False
        return self._receive(MASKED_INPUT, sender, self._masked, message)

    def close_masked_inputs(self) -> Tuple[List[int], List[int]]:
        """Freeze survivors (U3) and dropouts (U2 \\ U3)."""
        self._require_phase(MASKED_INPUT)
        self.survivors = sorted(u for u in self._masked if u in self.share_roster)
        self.dropouts = sorted(set(self.share_roster) - set(self.survivors))
        if len(self.survivors) < self.threshold:
            raise SecureRoundAbort(
                MASKED_INPUT, len(self.survivors), self.threshold
            )
        self.phase = UNMASK
        return list(self.survivors), list(self.dropouts)

    # -- round 3 -------------------------------------------------------
    def receive_unmask(self, message: UnmaskShares) -> bool:
        sender = int(message.client_id)
        if self.phase == UNMASK and sender in self._advertisements:
            advert = self._advertisements[sender]
            expected = _survivor_digest(
                advert.mac_key, self.round_id, self.survivors
            )
            if not hmac.compare_digest(message.survivor_signature, expected):
                # Consistency-check failure: the client signed a different
                # survivor set than the server announced.
                self.rejected_inputs += 1
                return False
            if set(message.self_shares) & set(message.key_shares):
                raise ProtocolError(
                    f"client {sender} revealed both share kinds for one id"
                )
        return self._receive(UNMASK, sender, self._unmask, message)

    def finalize(self) -> np.ndarray:
        """Reconstruct, strip masks, decode — the protocol's payoff."""
        self._require_phase(UNMASK)
        self.responders = sorted(self._unmask)
        if len(self.responders) < self.threshold:
            raise SecureRoundAbort(UNMASK, len(self.responders), self.threshold)

        total = np.zeros(self.vector_size, dtype=_FIELD_DTYPE)
        for survivor in self.survivors:
            total = total + np.asarray(
                self._masked[survivor].vector, dtype=_FIELD_DTYPE
            )

        # Survivors' self-masks: reconstruct b_u from the revealed shares
        # and verify against the advertised commitment before trusting it.
        for survivor in self.survivors:
            shares = self._collect_shares(survivor, kind="self")
            seed = shamir_reconstruct(shares)
            if _digest_int("commit", seed, bits=64) != self._advertisements[
                survivor
            ].self_commitment:
                raise ProtocolError(
                    f"reconstructed self-mask seed for {survivor} fails its "
                    "advertised commitment"
                )
            total = total - pairwise_mask(
                _prg_seed("selfmask", seed), self.round_id, self.vector_size
            )

        # Dropouts' dangling pairwise masks: reconstruct the DH secret,
        # verify against the advertised public key, re-derive every
        # surviving pair's seed and strip the mask with the right sign.
        for dropout in self.dropouts:
            shares = self._collect_shares(dropout, kind="key")
            secret = shamir_reconstruct(shares)
            advert = self._advertisements[dropout]
            if pow(DH_GENERATOR, secret, SHAMIR_PRIME) != advert.dh_public:
                raise ProtocolError(
                    f"reconstructed DH secret for {dropout} fails its "
                    "advertised public key"
                )
            for survivor in self.survivors:
                shared = pow(
                    self._advertisements[survivor].dh_public, secret, SHAMIR_PRIME
                )
                mask = pairwise_mask(
                    _prg_seed(shared), self.round_id, self.vector_size
                )
                # The survivor added +mask when its id is the smaller of
                # the pair, −mask otherwise; subtract what was added.
                if survivor < dropout:
                    total = total - mask
                else:
                    total = total + mask

        codec = FixedPointCodec(self.config.precision_bits, self.config.clip_range)
        return codec.decode(total)

    def _collect_shares(self, target: int, kind: str) -> Dict[int, int]:
        """Exactly ``threshold`` shares of one client's secret, or abort.

        Taking a fixed-size prefix (responders in id order) keeps
        reconstruction deterministic regardless of how many extra
        responses arrived.
        """
        collected: Dict[int, int] = {}
        for responder in self.responders:
            reveals = (
                self._unmask[responder].self_shares
                if kind == "self"
                else self._unmask[responder].key_shares
            )
            if target in reveals:
                x, y = reveals[target]
                collected[int(x)] = int(y)
            if len(collected) == self.threshold:
                break
        if len(collected) < self.threshold:
            raise SecureRoundAbort(UNMASK, len(collected), self.threshold)
        return collected

    def _require_phase(self, phase: str) -> None:
        if self.phase != phase:
            raise ProtocolError(
                f"server is in phase {self.phase!r}, cannot run {phase!r}"
            )


# ----------------------------------------------------------------------
# Fault injection and the round report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """Which clients misbehave at which phase (orchestrator-level).

    ``drops[phase]`` never send that phase's message (nor any later
    one); ``duplicates[phase]`` send it twice.  Phases not listed are
    clean.  The plan is data, not randomness — simulators draw it from
    their owned streams, tests write it down explicitly.
    """

    drops: Mapping[str, frozenset] = field(default_factory=dict)
    duplicates: Mapping[str, frozenset] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for mapping in (self.drops, self.duplicates):
            for phase in mapping:
                if phase not in PHASES:
                    raise ValueError(f"unknown protocol phase {phase!r}")

    def drops_at(self, phase: str) -> Set[int]:
        return set(self.drops.get(phase, ()))

    def duplicates_at(self, phase: str) -> Set[int]:
        return set(self.duplicates.get(phase, ()))

    def dropped_by(self, phase: str) -> Set[int]:
        """Everyone already gone when ``phase`` runs (drops are sticky)."""
        gone: Set[int] = set()
        for candidate in PHASES:
            gone |= self.drops_at(candidate)
            if candidate == phase:
                break
        return gone


@dataclass
class SecureRoundReport:
    """Deterministic accounting for one secure round."""

    round_id: int
    expected: int
    threshold: int
    roster: List[int] = field(default_factory=list)
    share_roster: List[int] = field(default_factory=list)
    survivors: List[int] = field(default_factory=list)
    responders: List[int] = field(default_factory=list)
    dropouts_by_phase: Dict[str, List[int]] = field(default_factory=dict)
    duplicates_ignored: int = 0
    late_rejected: int = 0
    aborted: bool = False
    abort_phase: Optional[str] = None
    saturated_scalars: int = 0
    masked_vector_scalars: int = 0
    phase_wire: Dict[str, float] = field(default_factory=dict)

    @property
    def protocol_overhead(self) -> float:
        """Key/share/MAC traffic beyond the masked vectors themselves."""
        return float(sum(self.phase_wire.values()))

    def as_dict(self) -> Dict[str, object]:
        return {
            "round_id": self.round_id,
            "expected": self.expected,
            "threshold": self.threshold,
            "survivors": list(self.survivors),
            "dropouts_by_phase": {
                phase: list(ids) for phase, ids in self.dropouts_by_phase.items()
            },
            "aborted": self.aborted,
            "abort_phase": self.abort_phase,
            "saturated_scalars": int(self.saturated_scalars),
            "masked_vector_scalars": int(self.masked_vector_scalars),
            "phase_wire": {k: float(v) for k, v in self.phase_wire.items()},
        }


# ----------------------------------------------------------------------
# Orchestration: one full round over heterogeneous uploads
# ----------------------------------------------------------------------
def run_secure_round(
    updates: Sequence[ClientUpdate],
    dims: Mapping[str, int],
    config: SecureAggregationConfig,
    round_id: int,
    faults: Optional[FaultPlan] = None,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Dict[str, np.ndarray]], SecureRoundReport]:
    """Drive every phase of the protocol over one round's uploads.

    Returns ``(embedding_sums, head_sums, report)``: the decoded sums
    cover exactly ``report.survivors`` (clients that delivered masked
    input, including any that later dropped at the unmask phase — their
    self-masks reconstruct from fellow survivors' shares).  On a
    below-threshold abort both dicts are empty and ``report.aborted``
    is set; the caller owns the fallback.

    No RNG stream is consumed anywhere in this function.
    """
    if not updates:
        raise ValueError("run_secure_round needs at least one update")
    faults = faults or FaultPlan()
    layout = _round_layout(updates, dims)
    by_id = {int(u.user_id): u for u in updates}
    if len(by_id) != len(updates):
        raise ValueError(
            "duplicate user ids in a secure round — merge uploads first "
            "(each participant holds exactly one masking slot)"
        )
    ids = sorted(by_id)

    server = SecureAggregationServer(ids, layout.total, round_id, config)
    clients = {uid: SecureAggregationClient(uid, round_id, config) for uid in ids}
    report = SecureRoundReport(
        round_id=round_id,
        expected=len(ids),
        threshold=server.threshold,
        masked_vector_scalars=layout.total,
        phase_wire={phase: 0.0 for phase in PHASES},
    )

    def deliver(phase: str, uid: int, send, wire: float) -> None:
        """One client's message for ``phase``, with duplicate injection."""
        send()
        report.phase_wire[phase] += wire
        if uid in faults.duplicates_at(phase):
            send()  # the server must dedupe, not double-count
            report.phase_wire[phase] += wire

    try:
        # -- round 0: key advertisement --------------------------------
        gone = faults.drops_at(ADVERTISE)
        for uid in ids:
            if uid in gone:
                continue
            message = clients[uid].advertise()
            deliver(
                ADVERTISE, uid,
                lambda m=message: server.receive_advertisement(m),
                _WIRE_PUBKEYS,
            )
        roster = server.close_advertise()
        report.roster = list(roster)
        report.dropouts_by_phase[ADVERTISE] = sorted(set(ids) - set(roster))
        # Roster broadcast: ids + threshold, to every roster member.
        report.phase_wire[ADVERTISE] += float(len(roster) * (len(roster) + 1))

        # -- round 1: Shamir seed shares -------------------------------
        advertisements = {uid: server._advertisements[uid] for uid in roster}
        gone = faults.dropped_by(SHARES)
        for uid in roster:
            if uid in gone:
                continue
            bundle = clients[uid].make_shares(
                roster, server.threshold, advertisements
            )
            deliver(
                SHARES, uid,
                lambda u=uid, b=bundle: server.receive_shares(u, b),
                _WIRE_SHARE_PAIR * max(len(roster) - 1, 0),
            )
        share_roster = server.close_shares()
        report.share_roster = list(share_roster)
        report.dropouts_by_phase[SHARES] = sorted(
            set(roster) - set(share_roster) - faults.drops_at(ADVERTISE)
        )
        # Relay: each member downloads its addressed shares + the roster.
        for uid in share_roster:
            clients[uid].receive_shares(server.shares_for(uid), share_roster)
            report.phase_wire[SHARES] += (
                _WIRE_SHARE_PAIR * max(len(share_roster) - 1, 0)
                + len(share_roster)
            )

        # -- round 2: double-masked input ------------------------------
        gone = faults.dropped_by(MASKED_INPUT)
        for uid in share_roster:
            if uid in gone:
                continue
            client = clients[uid]
            message = client.masked_input(_flatten_update(by_id[uid], layout))
            report.saturated_scalars += client.codec.saturated_total
            deliver(
                MASKED_INPUT, uid,
                lambda m=message: server.receive_masked_input(m),
                _WIRE_MAC,  # the vector itself is metered as the upload
            )
        survivors, dropouts = server.close_masked_inputs()
        report.survivors = list(survivors)
        report.dropouts_by_phase[MASKED_INPUT] = sorted(
            set(share_roster) - set(survivors) - faults.dropped_by(SHARES)
        )

        # -- round 3: consistency check + unmasking --------------------
        gone = faults.dropped_by(UNMASK)
        for uid in survivors:
            if uid in gone:
                continue
            response = clients[uid].unmask_response(survivors, dropouts)
            deliver(
                UNMASK, uid,
                lambda m=response: server.receive_unmask(m),
                _WIRE_SIGNATURE + 3.0 * (len(survivors) + len(dropouts)),
            )
            # Survivor/dropout roster broadcast to this responder.
            report.phase_wire[UNMASK] += float(len(survivors) + len(dropouts))
        decoded = server.finalize()
        report.responders = list(server.responders)
        report.dropouts_by_phase[UNMASK] = sorted(
            set(survivors) - set(server.responders) - faults.dropped_by(MASKED_INPUT)
        )
    except SecureRoundAbort as abort:
        report.aborted = True
        report.abort_phase = abort.phase
        report.survivors = []
        report.duplicates_ignored = server.duplicates_ignored
        report.late_rejected = server.late_rejected
        # Masked vectors delivered before the abort are wasted wire.
        report.phase_wire[MASKED_INPUT] += float(
            len(server._masked) * layout.total
        )
        return {}, {}, report

    report.duplicates_ignored = server.duplicates_ignored
    report.late_rejected = server.late_rejected
    embeddings, heads = _unflatten_sum(decoded, layout, dims)
    return embeddings, heads, report
