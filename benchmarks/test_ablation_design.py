"""Benchmarks: ablations of this repo's documented design choices.

DESIGN.md §2 records deliberate deviations from the paper (Θ averaging,
server update rule) and open hyper-parameters (RESKD subset size).
These benches regenerate the evidence for each choice.
"""

import numpy as np

from repro.experiments.ablations import (
    format_kd_subset,
    format_server_optimizer,
    format_theta_mode,
    run_kd_subset,
    run_server_optimizer,
    run_theta_mode,
)


def test_ablation_theta_mode(benchmark, artifact):
    results = benchmark.pedantic(lambda: run_theta_mode("bench"), rounds=1, iterations=1)
    artifact("ablation_theta_mode", format_theta_mode(results))

    for result in results.values():
        assert np.isfinite(result.ndcg) and result.ndcg >= 0.0
    # The documented reason for the deviation: averaging must not be
    # worse than the paper's verbatim summation at this scale.
    assert (
        results["theta mean (default)"].ndcg
        >= 0.8 * results["theta sum (paper)"].ndcg
    )


def test_ablation_server_optimizer(benchmark, artifact):
    results = benchmark.pedantic(
        lambda: run_server_optimizer("bench"), rounds=1, iterations=1
    )
    artifact("ablation_server_optimizer", format_server_optimizer(results))

    for result in results.values():
        assert np.isfinite(result.ndcg)
    # Direct application (the paper's rule) must remain competitive:
    # no adaptive rule should beat it by an order of magnitude.
    direct = results["direct (paper)"].ndcg
    assert all(result.ndcg <= 10 * max(direct, 1e-6) for result in results.values())


def test_ablation_kd_subset(benchmark, artifact):
    results = benchmark.pedantic(lambda: run_kd_subset("bench"), rounds=1, iterations=1)
    artifact("ablation_kd_subset", format_kd_subset(results))

    values = [result.ndcg for result in results.values()]
    assert all(np.isfinite(v) for v in values)
    # RESKD's effect is a refinement, not a cliff: the sweep should stay
    # within a reasonable band rather than collapse at any size.
    assert min(values) > 0.3 * max(values)
