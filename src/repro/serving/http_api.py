"""Optional stdlib HTTP front end for the recommendation service.

Kept deliberately out of the core's import path: the batching / caching
/ hot-swap machinery in :mod:`repro.serving.service` is plain python and
fully usable (and tested) without a server; this module only adds a thin
JSON transport over :mod:`http.server` for deployments that want one —
no third-party dependency, started via ``python -m repro serve``.

Routes
------
``GET /healthz``
    Liveness + the serving model version.
``GET /v1/recommend?user=ID[&k=K]``
    Top-k answer for one user, through the request coalescer (so
    concurrent HTTP requests batch into one blocked matmul).
``GET /v1/stats``
    Service / cache / coalescer counters.
``POST /v1/swap`` with body ``{"checkpoint": PATH}``
    Zero-downtime hot-swap to a newer checkpoint; 409 on a manifest
    mismatch (the old model keeps serving).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.federated.checkpoint import CheckpointMismatchError
from repro.serving.coalescer import RequestCoalescer
from repro.serving.service import RecommendationService, UnknownUserError


class ServingHandler(BaseHTTPRequestHandler):
    """Request handler bound to a service + coalescer via the server."""

    server: "ServingHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        if url.path == "/healthz":
            service = self.server.service
            self._reply(
                200,
                {
                    "status": "ok",
                    "model_version": service.model_version,
                    "checkpoint": service.checkpoint_path,
                },
            )
        elif url.path == "/v1/recommend":
            self._recommend(parse_qs(url.query))
        elif url.path == "/v1/stats":
            stats = dict(self.server.service.stats())
            stats["coalescer"] = self.server.coalescer.stats()
            self._reply(200, stats)
        else:
            self._error(404, f"no route {url.path!r}")

    def _recommend(self, query: dict) -> None:
        try:
            user_id = int(query["user"][0])
            k = int(query["k"][0]) if "k" in query else None
        except (KeyError, ValueError):
            self._error(400, "expected ?user=<int>[&k=<int>]")
            return
        try:
            answer = self.server.coalescer.submit(user_id, k=k)
        except UnknownUserError as error:
            self._error(404, str(error))
            return
        self._reply(200, answer.to_json())

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        if url.path != "/v1/swap":
            self._error(404, f"no route {url.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            checkpoint = payload["checkpoint"]
        except (ValueError, KeyError):
            self._error(400, 'expected JSON body {"checkpoint": PATH}')
            return
        try:
            version = self.server.service.swap(checkpoint)
        except CheckpointMismatchError as error:
            self._error(409, str(error))
            return
        except (FileNotFoundError, OSError) as error:
            self._error(400, f"checkpoint unreadable: {error}")
            return
        self._reply(200, {"status": "swapped", "model_version": version})


class ServingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server wired to one service + coalescer."""

    daemon_threads = True

    def __init__(
        self,
        service: RecommendationService,
        address: Tuple[str, int] = ("127.0.0.1", 8777),
        coalescer: Optional[RequestCoalescer] = None,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServingHandler)
        self.service = service
        self.coalescer = coalescer or RequestCoalescer(service)
        self.verbose = verbose

    def shutdown(self) -> None:  # noqa: D102 - inherited semantics
        super().shutdown()
        self.coalescer.close()


def run_server(
    service: RecommendationService,
    host: str = "127.0.0.1",
    port: int = 8777,
    coalescer: Optional[RequestCoalescer] = None,
    verbose: bool = True,
    ready: Optional[threading.Event] = None,
) -> None:
    """Serve until interrupted (the blocking entry ``repro serve`` uses)."""
    server = ServingHTTPServer(
        service, (host, port), coalescer=coalescer, verbose=verbose
    )
    if verbose:
        bound = server.server_address
        print(
            f"serving checkpoint {service.checkpoint_path} "
            f"(model version {service.model_version}, "
            f"{service.stats()['users']} users) on http://{bound[0]}:{bound[1]}"
        )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
