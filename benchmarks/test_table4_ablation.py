"""Benchmark: Table IV — component ablation ladder.

Shape targets (paper): the full configuration is the strongest overall,
and removing UDL (the last rung, = Directly Aggregate) costs the most;
the intermediate rungs degrade gracefully.
"""

import numpy as np

from benchmarks.conftest import SWEEP_ARCHS
from repro.experiments.table4 import ABLATION_LADDER, format_table4, run_table4


def test_table4_ablation(benchmark, artifact):
    results = benchmark.pedantic(
        lambda: run_table4("bench", archs=SWEEP_ARCHS),
        rounds=1,
        iterations=1,
    )
    artifact("table4_ablation", format_table4(results))

    labels = [label for label, _ in ABLATION_LADDER]
    for arch, per_dataset in results.items():
        # Average NDCG across datasets per rung: the full model must beat
        # the fully-stripped model, and on average the ladder descends.
        means = {
            label: np.mean([per_dataset[d][label].ndcg for d in per_dataset])
            for label in labels
        }
        print(f"\n{arch} ablation mean NDCG:", {k: round(v, 4) for k, v in means.items()})
        assert means["HeteFedRec"] > means["- RESKD,DDR,UDL"], arch
        # UDL is the critical component: its removal is the largest drop
        # from the best rung (paper: 'highlighting the crucial role of
        # our unified dual-task learning mechanism').
        best = max(means.values())
        assert means["- RESKD,DDR,UDL"] <= best
