"""Tests for structural/composite ops: concat, stack, gather, losses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, ops


class TestConcat:
    def test_forward_axis1(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        assert np.allclose(out.data[:, :2], 1.0)

    def test_gradient_splits_correctly(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = ops.concat([a, b], axis=1)
        out.backward(np.tile(np.arange(5.0), (2, 1)))
        assert np.allclose(a.grad, np.tile([0.0, 1.0], (2, 1)))
        assert np.allclose(b.grad, np.tile([2.0, 3.0, 4.0], (2, 1)))

    def test_axis0(self):
        a = Tensor(np.ones((1, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        ops.concat([a, b], axis=0).sum().backward()
        assert a.grad.shape == (1, 3)
        assert b.grad.shape == (2, 3)


class TestStack:
    def test_forward_and_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])


class TestGather:
    def test_selects_rows(self):
        w = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = ops.gather(w, [2, 0])
        assert np.allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_duplicate_indices_accumulate(self):
        w = Tensor(np.zeros((4, 2)), requires_grad=True)
        ops.gather(w, [1, 1, 1]).sum().backward()
        assert np.allclose(w.grad[1], [3.0, 3.0])
        assert np.allclose(w.grad[0], [0.0, 0.0])

    def test_gradient_only_on_touched_rows(self):
        w = Tensor(np.ones((5, 2)), requires_grad=True)
        ops.gather(w, [0, 4]).sum().backward()
        touched = np.abs(w.grad).sum(axis=1) > 0
        assert list(touched) == [True, False, False, False, True]

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_gradient_counts_match_index_multiplicity(self, indices):
        w = Tensor(np.zeros((10, 1)), requires_grad=True)
        ops.gather(w, indices).sum().backward()
        for row in range(10):
            assert w.grad[row, 0] == indices.count(row)


class TestWhere:
    def test_selection(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([10.0, 20.0])
        out = ops.where(np.array([True, False]), a, b)
        assert np.allclose(out.data, [1.0, 20.0])

    def test_gradient_routing(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([10.0, 20.0], requires_grad=True)
        ops.where(np.array([True, False]), a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_broadcast_condition_column(self):
        mask = np.array([[True], [False]])
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.zeros((2, 3)), requires_grad=True)
        out = ops.where(mask, a, b)
        assert np.allclose(out.data, [[1, 1, 1], [0, 0, 0]])


class TestLogSigmoid:
    def test_matches_naive_in_safe_range(self):
        x = np.linspace(-5, 5, 11)
        out = ops.log_sigmoid(Tensor(x))
        assert np.allclose(out.data, np.log(1 / (1 + np.exp(-x))))

    def test_stable_at_extremes(self):
        out = ops.log_sigmoid(Tensor([-1e4, 1e4]))
        assert np.all(np.isfinite(out.data))
        assert out.data[1] == pytest.approx(0.0, abs=1e-10)

    def test_gradient(self):
        x = Tensor([0.0], requires_grad=True)
        ops.log_sigmoid(x).sum().backward()
        assert np.allclose(x.grad, [0.5])  # 1 - σ(0)


class TestBCEWithLogits:
    def test_matches_manual_formula(self):
        logits = np.array([0.3, -1.2, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        out = ops.bce_with_logits(Tensor(logits), targets)
        sig = 1 / (1 + np.exp(-logits))
        manual = -(targets * np.log(sig) + (1 - targets) * np.log(1 - sig)).mean()
        assert out.data == pytest.approx(manual)

    def test_reductions(self):
        logits = Tensor(np.zeros(4))
        per_item = ops.bce_with_logits(logits, np.ones(4), reduction="none")
        assert per_item.shape == (4,)
        total = ops.bce_with_logits(logits, np.ones(4), reduction="sum")
        assert total.data == pytest.approx(4 * np.log(2))

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            ops.bce_with_logits(Tensor([0.0]), [1.0], reduction="bogus")

    def test_gradient_is_sigma_minus_target(self):
        logits = Tensor([0.0, 0.0], requires_grad=True)
        ops.bce_with_logits(logits, np.array([1.0, 0.0]), reduction="sum").backward()
        assert np.allclose(logits.grad, [-0.5, 0.5])

    def test_stable_for_extreme_logits(self):
        out = ops.bce_with_logits(Tensor([1e4, -1e4]), np.array([0.0, 1.0]))
        assert np.isfinite(float(out.data))

    @given(
        st.lists(st.floats(-30, 30), min_size=1, max_size=10),
        st.lists(st.sampled_from([0.0, 1.0]), min_size=1, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_loss_nonnegative(self, logits, labels):
        n = min(len(logits), len(labels))
        out = ops.bce_with_logits(
            Tensor(np.array(logits[:n])), np.array(labels[:n])
        )
        assert float(out.data) >= 0.0


class TestCosineSimilarity:
    def test_self_similarity_is_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        sims = ops.cosine_similarity_matrix(x).data
        assert np.allclose(np.diag(sims), 1.0)

    def test_symmetric_and_bounded(self):
        x = Tensor(np.random.default_rng(1).normal(size=(5, 4)))
        sims = ops.cosine_similarity_matrix(x).data
        assert np.allclose(sims, sims.T)
        assert np.all(sims <= 1.0 + 1e-9)
        assert np.all(sims >= -1.0 - 1e-9)

    def test_orthogonal_rows(self):
        x = Tensor(np.eye(3))
        sims = ops.cosine_similarity_matrix(x).data
        assert np.allclose(sims, np.eye(3))

    def test_scale_invariance(self):
        base = np.random.default_rng(2).normal(size=(3, 4))
        a = ops.cosine_similarity_matrix(Tensor(base)).data
        b = ops.cosine_similarity_matrix(Tensor(base * 7.5)).data
        assert np.allclose(a, b)


class TestNormHelpers:
    def test_l2_normalize_unit_rows(self):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 5)))
        norms = np.linalg.norm(ops.l2_normalize(x).data, axis=1)
        assert np.allclose(norms, 1.0)

    def test_frobenius_norm(self):
        x = Tensor([[3.0, 4.0]])
        assert float(ops.frobenius_norm(x).data) == pytest.approx(5.0, rel=1e-6)


class TestBatchedGather:
    def test_forward_selects_per_batch_rows(self):
        weight = Tensor(np.arange(24, dtype=np.float64).reshape(2, 4, 3))
        idx = np.array([[0, 2], [3, 3]])
        out = ops.batched_gather(weight, idx)
        assert np.array_equal(out.data[0], weight.data[0][[0, 2]])
        assert np.array_equal(out.data[1], weight.data[1][[3, 3]])

    def test_duplicate_indices_accumulate(self):
        weight = Tensor(np.zeros((1, 3, 2)), requires_grad=True)
        idx = np.array([[1, 1, 0]])
        out = ops.batched_gather(weight, idx)
        out.sum().backward()
        assert np.array_equal(weight.grad[0, :, 0], [1.0, 2.0, 0.0])

    def test_gradcheck(self):
        from repro.autograd.gradcheck import gradcheck

        rng = np.random.default_rng(0)
        weight = Tensor(rng.normal(size=(2, 5, 3)), requires_grad=True)
        idx = rng.integers(0, 5, size=(2, 4))
        assert gradcheck(lambda w: (ops.batched_gather(w, idx) ** 2).sum(), [weight])

    def test_matches_per_batch_gather(self):
        rng = np.random.default_rng(1)
        weight = rng.normal(size=(3, 6, 4))
        idx = rng.integers(0, 6, size=(3, 5))
        batched = ops.batched_gather(Tensor(weight), idx)
        for b in range(3):
            single = ops.gather(Tensor(weight[b]), idx[b])
            assert np.array_equal(batched.data[b], single.data)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ops.batched_gather(Tensor(np.zeros((2, 3))), np.zeros((2, 2), dtype=int))


class TestBatchedSparseMatmul:
    """The round engine's padded-CSR propagation primitive."""

    def test_forward_is_weighted_row_sum(self):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(2, 5, 3))
        idx = np.array([[0, 2, 4], [1, 1, 3]])
        coeffs = np.array([[0.5, 0.25, 0.25], [1.0, -1.0, 2.0]])
        out = ops.batched_sparse_matmul(Tensor(weight), idx, coeffs)
        for b in range(2):
            expected = coeffs[b] @ weight[b][idx[b]]
            np.testing.assert_allclose(out.data[b], expected)

    def test_zero_coefficient_padding_is_inert(self):
        """Padded entries carry coefficient 0 and may point anywhere:
        they must contribute neither value nor gradient."""
        weight = Tensor(np.ones((1, 4, 2)), requires_grad=True)
        idx = np.array([[1, 3, 0]])
        coeffs = np.array([[0.5, 0.5, 0.0]])
        out = ops.batched_sparse_matmul(weight, idx, coeffs)
        np.testing.assert_allclose(out.data, [[1.0, 1.0]])
        out.sum().backward()
        assert np.all(weight.grad[0, 0] == 0.0)
        np.testing.assert_allclose(weight.grad[0, 1], [0.5, 0.5])

    def test_duplicate_indices_accumulate(self):
        weight = Tensor(np.zeros((1, 3, 2)), requires_grad=True)
        idx = np.array([[1, 1, 0]])
        coeffs = np.array([[2.0, 3.0, 1.0]])
        ops.batched_sparse_matmul(weight, idx, coeffs).sum().backward()
        np.testing.assert_allclose(weight.grad[0, :, 0], [1.0, 5.0, 0.0])

    def test_matches_gather_mean(self):
        """With coefficients 1/n this is exactly the neighbourhood mean
        LightGCN's reference path computes per client."""
        rng = np.random.default_rng(2)
        weight = rng.normal(size=(1, 8, 4))
        neighbours = np.array([0, 3, 5])
        idx = neighbours[np.newaxis]
        coeffs = np.full((1, 3), 1.0 / 3.0)
        out = ops.batched_sparse_matmul(Tensor(weight), idx, coeffs)
        np.testing.assert_allclose(
            out.data[0], weight[0][neighbours].mean(axis=0), atol=1e-12
        )

    def test_gradcheck(self):
        from repro.autograd.gradcheck import gradcheck

        rng = np.random.default_rng(3)
        weight = Tensor(rng.normal(size=(2, 6, 3)), requires_grad=True)
        idx = rng.integers(0, 6, size=(2, 4))
        coeffs = rng.normal(size=(2, 4))
        assert gradcheck(
            lambda w: (ops.batched_sparse_matmul(w, idx, coeffs) ** 2).sum(),
            [weight],
        )

    def test_rejects_misaligned_shapes(self):
        with pytest.raises(ValueError):
            ops.batched_sparse_matmul(
                Tensor(np.zeros((2, 3, 2))),
                np.zeros((2, 2), dtype=int),
                np.zeros((2, 3)),
            )
