"""Tier-1 smoke test for the secure-aggregation benchmark script.

Runs the benchmark at quick scale so ``bench_secure_agg.py`` cannot
silently rot between full runs: the full four-phase protocol, the
dropout-recovery round, the wire accounting and the ``--check`` gate
all execute.  No timing assertions — small machines need not hit any
floor.
"""

import json

from benchmarks.bench_secure_agg import check_regression, run_benchmark
from repro.federated.secure_protocol import PHASES


def test_quick_benchmark_runs(tmp_path):
    report = run_benchmark(quick=True)
    assert [c["num_clients"] for c in report["cohorts"]] == [16, 32]
    for cohort in report["cohorts"]:
        assert cohort["exact"] is True
        assert cohort["clients_per_second"] > 0
        assert cohort["recovery_seconds"] > 0
        assert cohort["recovery_survivors"] == (
            cohort["num_clients"] - cohort["recovery_dropouts"]
        )
        assert set(cohort["phase_wire"]) == set(PHASES)
        assert cohort["protocol_overhead"] > 0
        assert cohort["overhead_ratio"] > 1.0

    # More clients ⇒ more pairwise traffic per shipped scalar.
    ratios = [c["overhead_ratio"] for c in report["cohorts"]]
    assert ratios == sorted(ratios)

    # The gate clears its own baseline...
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(report))
    assert check_regression(report, str(baseline), tolerance=0.4)

    # ...an exactness break always fails it...
    broken = json.loads(json.dumps(report))
    broken["cohorts"][0]["exact"] = False
    assert not check_regression(broken, str(baseline), tolerance=0.4)

    # ...as do a throughput collapse and wire-accounting drift.
    slow = json.loads(json.dumps(report))
    slow["cohorts"][1]["clients_per_second"] /= 100
    assert not check_regression(slow, str(baseline), tolerance=0.4)
    drifted = json.loads(json.dumps(report))
    drifted["cohorts"][0]["overhead_ratio"] += 0.5
    assert not check_regression(drifted, str(baseline), tolerance=0.4)


def test_scale_mismatch_skips_floors(tmp_path):
    """A --quick report gated against the committed full-scale baseline
    must not compare throughput across cohort sizes — only exactness."""
    report = run_benchmark(quick=True)
    full_baseline = {
        "benchmark": "secure_agg",
        "config": dict(report["config"], cohorts=[64, 128, 256], quick=False),
        "cohorts": [
            dict(c, num_clients=c["num_clients"] * 1000)
            for c in report["cohorts"]
        ],
    }
    baseline = tmp_path / "full.json"
    baseline.write_text(json.dumps(full_baseline))
    assert check_regression(report, str(baseline), tolerance=0.4)
