"""Tests for Module/Parameter containers and state-dict exchange."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential, ReLU
from repro.nn.module import Module, Parameter


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(3, 4)
        self.second = Linear(4, 2)
        self.scale = Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


class TestParameterDiscovery:
    def test_named_parameters_cover_tree(self):
        model = TwoLayer()
        names = {name for name, _ in model.named_parameters()}
        assert names == {
            "scale",
            "first.weight",
            "first.bias",
            "second.weight",
            "second.bias",
        }

    def test_parameters_are_trainable(self):
        model = TwoLayer()
        assert all(p.requires_grad for p in model.parameters())

    def test_parameter_count(self):
        model = TwoLayer()
        assert model.parameter_count() == (3 * 4 + 4) + (4 * 2 + 2) + 1

    def test_zero_grad_clears_all(self):
        model = TwoLayer()
        for p in model.parameters():
            p.grad = np.ones_like(p.data)
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = TwoLayer(), TwoLayer()
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_state_dict_copies(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.scale.data[0] == 1.0

    def test_load_preserves_parameter_identity(self):
        model = TwoLayer()
        param = model.first.weight
        model.load_state_dict(model.state_dict())
        assert model.first.weight is param  # in-place load, same object

    def test_strict_load_rejects_missing(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_strict_load_rejects_unexpected(self):
        model = TwoLayer()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_non_strict_load_ignores_extras(self):
        model = TwoLayer()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        model.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestInvocation:
    def test_forward_required(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_sequential_call(self):
        from repro.autograd import Tensor

        model = Sequential(Linear(2, 3), ReLU(), Linear(3, 1))
        out = model(Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)
