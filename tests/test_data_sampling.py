"""Tests for negative sampling and local batch construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import ClientData
from repro.data.sampling import NegativeSampler, TrainingBatch, build_training_batch


class TestNegativeSampler:
    def test_negatives_avoid_positives(self):
        sampler = NegativeSampler(50, seed=0)
        positives = np.array([1, 5, 9])
        negatives = sampler.sample(positives, 100)
        assert not set(negatives) & set(positives)
        assert negatives.size == 100

    def test_dense_fallback(self):
        """User has interacted with >50% of a tiny catalogue."""
        sampler = NegativeSampler(10, seed=0)
        positives = np.arange(8)
        negatives = sampler.sample(positives, 20)
        assert set(negatives) <= {8, 9}
        assert negatives.size == 20

    def test_all_items_interacted_raises(self):
        sampler = NegativeSampler(4, seed=0)
        with pytest.raises(ValueError):
            sampler.sample(np.arange(4), 1)

    def test_zero_count(self):
        sampler = NegativeSampler(10, seed=0)
        assert sampler.sample(np.array([0]), 0).size == 0

    def test_invalid_catalogue(self):
        with pytest.raises(ValueError):
            NegativeSampler(0)

    def test_deterministic_with_seed(self):
        a = NegativeSampler(100, seed=9).sample(np.array([0]), 20)
        b = NegativeSampler(100, seed=9).sample(np.array([0]), 20)
        assert np.array_equal(a, b)

    @given(
        st.sets(st.integers(0, 29), min_size=0, max_size=15),
        st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_avoidance_property(self, positives, count):
        sampler = NegativeSampler(30, seed=1)
        negatives = sampler.sample(np.array(sorted(positives), dtype=np.int64), count)
        assert negatives.size == count
        assert not set(int(n) for n in negatives) & positives
        assert all(0 <= n < 30 for n in negatives)


class TestTrainingBatch:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            TrainingBatch(items=np.arange(3), labels=np.zeros(2))

    def test_len(self):
        batch = TrainingBatch(items=np.arange(4), labels=np.zeros(4))
        assert len(batch) == 4


class TestBuildTrainingBatch:
    @pytest.fixture()
    def client(self):
        return ClientData(
            user_id=0,
            train_items=np.array([1, 2, 3]),
            valid_items=np.array([4]),
            test_items=np.array([5]),
        )

    def test_ratio(self, client):
        sampler = NegativeSampler(100, seed=0)
        batch = build_training_batch(client, sampler, negative_ratio=4)
        assert len(batch) == 3 * 5
        assert batch.labels.sum() == 3

    def test_negatives_avoid_train_and_valid_but_not_test(self, client):
        """Negatives must avoid known (train+valid) items; test items are
        legitimately unknown at training time and may be sampled."""
        sampler = NegativeSampler(7, seed=0)  # items 0..6; known = 1,2,3,4
        batch = build_training_batch(client, sampler, negative_ratio=4)
        negatives = set(batch.items[batch.labels == 0].tolist())
        assert not negatives & {1, 2, 3, 4}
        assert negatives <= {0, 5, 6}

    def test_shuffle_mixes_labels(self, client):
        sampler = NegativeSampler(100, seed=0)
        batch = build_training_batch(
            client, sampler, negative_ratio=4, shuffle_rng=np.random.default_rng(0)
        )
        # After shuffling, positives are not all at the front.
        assert batch.labels[: 3].sum() < 3 or batch.labels[3:].sum() > 0

    def test_positive_items_preserved(self, client):
        sampler = NegativeSampler(100, seed=0)
        batch = build_training_batch(client, sampler)
        positives = set(batch.items[batch.labels == 1].tolist())
        assert positives == {1, 2, 3}
