"""Tests for checkpoint save/load and inference-model restoration.

Covers the versioned-manifest compatibility contract (every mismatch —
wrong arch, wrong dims, missing group, extra/missing users, wrong
dtype, wrong feature set, wrong format version — raises
:class:`CheckpointMismatchError` rather than silently truncating), the
dtype-persistence fix for deploy-side loading, and full-state
restoration of the RNG/progress sections.  The bitwise resume pins live
in ``tests/test_checkpoint_resume.py``.
"""

import os

import numpy as np
import pytest

import repro.federated.checkpoint as checkpoint_module
from repro.core import HeteFedRec, HeteFedRecConfig
from repro.federated.availability import AvailabilityConfig
from repro.federated.checkpoint import (
    CheckpointMismatchError,
    load_checkpoint_impl as load_checkpoint,
    load_inference_model_impl as load_inference_model,
    read_manifest,
    save_checkpoint_impl as save_checkpoint,
    user_embedding_from_checkpoint,
)


@pytest.fixture()
def trained(tiny_dataset, tiny_clients):
    config = HeteFedRecConfig(
        dims={"s": 4, "m": 6, "l": 8}, epochs=1, local_epochs=1, lr=0.01, seed=0
    )
    trainer = HeteFedRec(tiny_dataset.num_items, tiny_clients, config)
    trainer.run_epoch(1)
    return trainer


def fresh_trainer(tiny_dataset, tiny_clients, seed=123, **overrides):
    config = HeteFedRecConfig(
        dims={"s": 4, "m": 6, "l": 8}, epochs=1, local_epochs=1, lr=0.01, seed=seed
    ).copy_with(**overrides)
    return HeteFedRec(tiny_dataset.num_items, tiny_clients, config)


class TestSaveLoad:
    def test_roundtrip_restores_everything(
        self, trained, tiny_dataset, tiny_clients, tmp_path
    ):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(trained, path)
        other = fresh_trainer(tiny_dataset, tiny_clients)
        load_checkpoint(other, path)

        for group in trained.groups:
            a = trained.models[group].state_dict()
            b = other.models[group].state_dict()
            for key in a:
                assert np.array_equal(a[key], b[key]), (group, key)
        for user_id, runtime in trained.runtimes.items():
            assert np.array_equal(
                runtime.user_embedding, other.runtimes[user_id].user_embedding
            )

    def test_restored_trainer_scores_identically(
        self, trained, tiny_dataset, tiny_clients, tmp_path
    ):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(trained, path)
        other = fresh_trainer(tiny_dataset, tiny_clients)
        load_checkpoint(other, path)
        client = tiny_clients[0]
        assert np.allclose(
            trained.score_all_items(client), other.score_all_items(client)
        )

    def test_meta_sidecar_written(self, trained, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(trained, path)
        assert os.path.exists(path + ".meta.json")

    def test_save_creates_parent_directories(self, trained, tmp_path):
        """An autosave target in a not-yet-existing directory must not
        crash after a whole epoch of training."""
        path = str(tmp_path / "nested" / "dir" / "ckpt.npz")
        save_checkpoint(trained, path)
        assert os.path.exists(path)

    def test_full_state_sections_restored(
        self, trained, tiny_dataset, tiny_clients, tmp_path
    ):
        """Progress, history, meter and every RNG stream survive a load."""
        path = str(tmp_path / "ckpt.npz")
        trained._epochs_done = 1
        save_checkpoint(trained, path)
        other = fresh_trainer(tiny_dataset, tiny_clients)
        load_checkpoint(other, path)

        assert other.epochs_completed == 1
        assert other._round_counter == trained._round_counter
        assert other.meter.export_state() == trained.meter.export_state()
        assert other.history.export_records() == trained.history.export_records()
        # RNG streams replay identically: server-side draws...
        assert np.array_equal(
            trained._rng.permutation(16), other._rng.permutation(16)
        )
        assert np.array_equal(trained._ddr_rng.integers(0, 100, 8),
                              other._ddr_rng.integers(0, 100, 8))
        # ...and each client's private + sampler streams.
        user = tiny_clients[0].user_id
        assert np.array_equal(
            trained.runtimes[user].rng.normal(size=4),
            other.runtimes[user].rng.normal(size=4),
        )
        assert np.array_equal(
            trained.runtimes[user].sampler._rng.integers(0, 100, 8),
            other.runtimes[user].sampler._rng.integers(0, 100, 8),
        )

    def test_manifest_readable(self, trained, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(trained, path)
        meta = read_manifest(path)
        assert meta["format_version"] == checkpoint_module.FORMAT_VERSION
        assert meta["method"] == "hetefedrec"
        assert meta["arch"] == "ncf"
        assert meta["dtype"] == "float64"
        assert meta["dims"] == {"s": 4, "m": 6, "l": 8}


class TestMismatch:
    """Every incompatibility raises; nothing ever silently truncates."""

    @pytest.fixture()
    def saved(self, trained, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(trained, path)
        return path

    def test_wrong_arch(self, saved, tiny_dataset, tiny_clients):
        other = fresh_trainer(tiny_dataset, tiny_clients, arch="mf")
        with pytest.raises(CheckpointMismatchError, match="arch"):
            load_checkpoint(other, saved)

    def test_wrong_dims(self, saved, tiny_dataset, tiny_clients):
        other = fresh_trainer(
            tiny_dataset, tiny_clients, dims={"s": 4, "m": 6, "l": 12}
        )
        with pytest.raises(CheckpointMismatchError, match="dims"):
            load_checkpoint(other, saved)

    def test_wrong_hidden(self, saved, tiny_dataset, tiny_clients):
        other = fresh_trainer(tiny_dataset, tiny_clients, hidden=(4, 4))
        with pytest.raises(CheckpointMismatchError, match="hidden"):
            load_checkpoint(other, saved)

    def test_missing_group(self, saved, tiny_dataset, tiny_clients):
        """A two-group trainer cannot absorb a three-group checkpoint."""
        config = HeteFedRecConfig(
            dims={"s": 4, "m": 6}, ratios=(1, 1, 0), epochs=1, local_epochs=1
        )
        other = HeteFedRec(tiny_dataset.num_items, tiny_clients, config)
        with pytest.raises(CheckpointMismatchError):
            load_checkpoint(other, saved)

    def test_missing_users(self, saved, tiny_dataset, tiny_clients):
        """Trainer clients absent from the checkpoint must raise."""
        config = HeteFedRecConfig(
            dims={"s": 4, "m": 6, "l": 8}, epochs=1, local_epochs=1
        )
        other = HeteFedRec(tiny_dataset.num_items, tiny_clients[:-3], config)
        with pytest.raises(CheckpointMismatchError, match="group assignment"):
            load_checkpoint(other, saved)

    def test_extra_users(self, trained, tiny_dataset, tiny_clients, tmp_path):
        """Checkpoint users absent from the trainer must raise too."""
        config = HeteFedRecConfig(
            dims={"s": 4, "m": 6, "l": 8}, epochs=1, local_epochs=1
        )
        subset = HeteFedRec(tiny_dataset.num_items, tiny_clients[:-3], config)
        path = str(tmp_path / "subset.npz")
        save_checkpoint(subset, path)
        full = fresh_trainer(tiny_dataset, tiny_clients)
        with pytest.raises(CheckpointMismatchError, match="group assignment"):
            load_checkpoint(full, path)

    def test_wrong_dtype(self, saved, tiny_dataset, tiny_clients):
        other = fresh_trainer(tiny_dataset, tiny_clients, dtype="float32")
        with pytest.raises(CheckpointMismatchError, match="dtype"):
            load_checkpoint(other, saved)

    def test_wrong_feature_set(self, saved, tiny_dataset, tiny_clients):
        """A checkpoint without availability state cannot seed a run
        that expects a straggler buffer."""
        other = fresh_trainer(
            tiny_dataset, tiny_clients,
            availability=AvailabilityConfig(offline_rate=0.1, straggler_rate=0.1),
        )
        with pytest.raises(CheckpointMismatchError, match="features"):
            load_checkpoint(other, saved)

    def test_wrong_privacy_setting(self, saved, tiny_dataset, tiny_clients):
        """Privacy protection draws client RNG per upload: enabling it on
        resume would silently change the stream, so it must raise."""
        from repro.federated.privacy import PrivacyConfig

        other = fresh_trainer(
            tiny_dataset, tiny_clients, privacy=PrivacyConfig(clip_norm=1.0)
        )
        with pytest.raises(CheckpointMismatchError, match="features"):
            load_checkpoint(other, saved)

    def test_wrong_training_hyperparameters(self, saved, tiny_dataset, tiny_clients):
        """lr / local_epochs / clients_per_round / negative_ratio shape
        every remaining epoch; resuming under different values raises."""
        for override in (
            {"lr": 0.1},
            {"local_epochs": 2},
            {"clients_per_round": 64},
            {"negative_ratio": 2},
        ):
            other = fresh_trainer(tiny_dataset, tiny_clients, **override)
            with pytest.raises(CheckpointMismatchError, match="training"):
                load_checkpoint(other, saved)

    def test_larger_epoch_budget_is_compatible(
        self, saved, tiny_dataset, tiny_clients
    ):
        """Extending the schedule is the point of resuming: not a mismatch."""
        other = fresh_trainer(tiny_dataset, tiny_clients, epochs=9)
        load_checkpoint(other, saved)

    def test_different_data_split(self, saved, tiny_dataset):
        """Same users, same counts, differently permuted train/test split
        (e.g. a different --seed at the CLI) must raise, not hybridise."""
        from repro.data.splitting import train_test_split_per_user

        reshuffled = train_test_split_per_user(tiny_dataset, seed=99)
        other = fresh_trainer(tiny_dataset, reshuffled)
        with pytest.raises(CheckpointMismatchError, match="data split"):
            load_checkpoint(other, saved)

    def test_wrong_method(self, saved, tiny_dataset, tiny_clients):
        from repro.baselines.direct import DirectAggregateTrainer

        config = HeteFedRecConfig(
            dims={"s": 4, "m": 6, "l": 8}, epochs=1, local_epochs=1
        )
        other = DirectAggregateTrainer(tiny_dataset.num_items, tiny_clients, config)
        with pytest.raises(CheckpointMismatchError, match="features"):
            load_checkpoint(other, saved)

    def test_unsupported_format_version(
        self, trained, tiny_dataset, tiny_clients, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "old.npz")
        monkeypatch.setattr(checkpoint_module, "FORMAT_VERSION", 1)
        save_checkpoint(trained, path)
        monkeypatch.undo()
        other = fresh_trainer(tiny_dataset, tiny_clients)
        with pytest.raises(CheckpointMismatchError, match="format version"):
            load_checkpoint(other, path)


class TestDtypePersistence:
    """The meta sidecar records ``config.dtype``; deploy restores it."""

    @pytest.fixture()
    def float32_trained(self, tiny_dataset, tiny_clients):
        config = HeteFedRecConfig(
            dims={"s": 4, "m": 6, "l": 8}, epochs=1, local_epochs=1,
            lr=0.01, seed=0, dtype="float32",
        )
        trainer = HeteFedRec(tiny_dataset.num_items, tiny_clients, config)
        trainer.run_epoch(1)
        return trainer

    def test_float32_run_deploys_as_float32(self, float32_trained, tmp_path):
        path = str(tmp_path / "f32.npz")
        save_checkpoint(float32_trained, path)
        model, meta = load_inference_model(path, "l")
        assert meta["dtype"] == "float32"
        for _, param in model.named_parameters():
            assert param.data.dtype == np.float32
        assert np.array_equal(
            model.item_embedding.weight.data,
            float32_trained.models["l"].item_embedding.weight.data,
        )

    def test_float32_roundtrip_into_float32_trainer(
        self, float32_trained, tiny_dataset, tiny_clients, tmp_path
    ):
        path = str(tmp_path / "f32.npz")
        save_checkpoint(float32_trained, path)
        other = fresh_trainer(tiny_dataset, tiny_clients, dtype="float32")
        load_checkpoint(other, path)
        for group in other.groups:
            for key, values in other.models[group].state_dict().items():
                assert values.dtype == np.float32, (group, key)


class TestInferenceModel:
    def test_load_single_group(self, trained, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(trained, path)
        model, meta = load_inference_model(path, "l")
        assert model.dim == 8
        assert meta["num_items"] == trained.num_items
        assert np.array_equal(
            model.item_embedding.weight.data,
            trained.models["l"].item_embedding.weight.data,
        )

    def test_unknown_group(self, trained, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(trained, path)
        with pytest.raises(KeyError):
            load_inference_model(path, "xl")

    def test_user_embedding_fetch(self, trained, tiny_clients, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(trained, path)
        user = tiny_clients[0].user_id
        values = user_embedding_from_checkpoint(path, user)
        assert np.array_equal(values, trained.runtimes[user].user_embedding)
        with pytest.raises(KeyError):
            user_embedding_from_checkpoint(path, 10_000)

    def test_end_to_end_serving(self, trained, tiny_clients, tmp_path):
        """Deploy path: restore model + embedding, score a user."""
        from repro.autograd.tensor import Tensor, no_grad

        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(trained, path)
        client = tiny_clients[0]
        group = trained.group_of[client.user_id]
        model, _ = load_inference_model(path, group)
        embedding = user_embedding_from_checkpoint(path, client.user_id)
        with no_grad():
            scores = model.logits(
                Tensor(embedding),
                np.arange(trained.num_items),
                train_item_ids=client.train_items,
            )
        assert np.allclose(scores.data, trained.score_all_items(client))
