"""Hot top-k cache for the serving layer.

Recommendation traffic is heavily repeat-skewed (the same user asks for
the same front page many times between training rounds), while the
underlying answer only changes when a new checkpoint is swapped in.  The
cache therefore keys every entry by ``(model_version, user_id, k)``: a
hot-swap bumps the version, so stale entries can never be served even
before :meth:`TopKCache.invalidate` reclaims their memory.

Plain-python LRU (an :class:`~collections.OrderedDict` under a lock) —
bounded, thread-safe, and dependency-free, matching the rest of the
serving core.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional, Tuple


class TopKCache:
    """Bounded LRU cache with hit/miss accounting.

    Parameters
    ----------
    max_entries:
        Capacity; ``0`` disables the cache entirely (every ``get`` is a
        miss, every ``put`` a no-op) — benchmarks use this to isolate
        the scoring path.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple[Hashable, ...], object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.stale_hits = 0

    def get(self, key: Tuple[Hashable, ...]) -> Optional[object]:
        """The cached value for ``key`` (refreshing its recency), or None."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Tuple[Hashable, ...], value: object) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def invalidate(self) -> int:
        """Drop every entry; returns how many were evicted.

        Version-keyed entries are already unreachable after a swap — this
        reclaims their memory and is also the explicit escape hatch for
        out-of-band model edits.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += 1
            return dropped

    def evict_version(self, model_version: int) -> int:
        """Eagerly drop every entry keyed to one dead model version.

        Returns how many entries were evicted.  Keys are
        ``(model_version, user_id, k)`` tuples; anything not shaped like
        that is left alone.
        """
        return self._evict_if(lambda v: v == int(model_version))

    def evict_older_than(self, min_version: int) -> int:
        """Drop every entry whose model version is below ``min_version``.

        This is the hot-swap reclaim when a stale window is retained:
        versions in ``[min_version, current]`` survive so the
        degradation ladder can still answer from them.
        """
        return self._evict_if(lambda v: v < int(min_version))

    def _evict_if(self, dead) -> int:
        with self._lock:
            victims = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key and dead(key[0])
            ]
            for key in victims:
                del self._entries[key]
            self.evictions += len(victims)
            return len(victims)

    def get_stale(
        self, user_id: int, k: int, current_version: int, max_back: int = 1
    ) -> Optional[Tuple[int, object]]:
        """A recent *previous-generation* answer for ``(user_id, k)``.

        Probes versions ``current_version - 1`` down to
        ``current_version - max_back`` directly (keys are exact, so this
        is O(max_back), not a scan) and returns ``(version, value)`` for
        the freshest hit, or None.  Counted separately from regular hits
        so ``stats()`` shows how often the service answered stale.
        """
        with self._lock:
            for back in range(1, int(max_back) + 1):
                version = int(current_version) - back
                if version < 1:
                    break
                value = self._entries.get((version, user_id, k))
                if value is not None:
                    self._entries.move_to_end((version, user_id, k))
                    self.stale_hits += 1
                    return version, value
            return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "stale_hits": self.stale_hits,
            }
