"""Tests for the six paper baselines and the method registry."""

import numpy as np
import pytest

from repro.baselines import (
    ClusteredTrainer,
    METHODS,
    StandaloneTrainer,
    build_method,
)
from repro.baselines.registry import DISPLAY_NAMES, TABLE2_ORDER
from repro.core.config import HeteFedRecConfig
from repro.core.grouping import divide_clients


def config(**overrides):
    base = dict(
        arch="ncf",
        dims={"s": 4, "m": 6, "l": 8},
        epochs=1,
        clients_per_round=32,
        local_epochs=1,
        lr=0.01,
        seed=0,
    )
    base.update(overrides)
    return HeteFedRecConfig(**base)


class TestRegistry:
    def test_all_seven_methods_present(self):
        assert set(METHODS) == {
            "all_small",
            "all_large",
            "all_large_exclusive",
            "standalone",
            "clustered",
            "directly_aggregate",
            "hetefedrec",
        }
        assert set(TABLE2_ORDER) == set(METHODS)
        assert set(DISPLAY_NAMES) == set(METHODS)

    def test_unknown_method(self, tiny_dataset, tiny_clients):
        with pytest.raises(KeyError):
            build_method("fedprox", tiny_dataset.num_items, tiny_clients, config())

    @pytest.mark.parametrize("name", sorted(METHODS))
    def test_every_method_trains_one_epoch(self, name, tiny_dataset, tiny_clients):
        trainer = build_method(name, tiny_dataset.num_items, tiny_clients, config())
        loss = trainer.run_epoch(1)
        assert np.isfinite(loss)
        scores = trainer.score_all_items(tiny_clients[0])
        assert scores.shape == (tiny_dataset.num_items,)
        assert np.all(np.isfinite(scores))


class TestHomogeneous:
    def test_all_small_uses_small_dim(self, tiny_dataset, tiny_clients):
        trainer = build_method("all_small", tiny_dataset.num_items, tiny_clients, config())
        (group,) = trainer.groups
        assert trainer.models[group].dim == 4

    def test_all_large_uses_large_dim(self, tiny_dataset, tiny_clients):
        trainer = build_method("all_large", tiny_dataset.num_items, tiny_clients, config())
        (group,) = trainer.groups
        assert trainer.models[group].dim == 8

    def test_exclusive_drops_small_clients(self, tiny_dataset, tiny_clients):
        trainer = build_method(
            "all_large_exclusive", tiny_dataset.num_items, tiny_clients, config()
        )
        division = divide_clients(tiny_clients, (5, 3, 2))
        expected_excluded = {u for u, g in division.items() if g == "s"}
        assert trainer.excluded_uploaders == expected_excluded

        small_user = next(iter(expected_excluded))
        update = trainer.train_client(trainer.runtimes[small_user])
        assert not trainer.accept_update(update)


class TestStandalone:
    def test_no_global_movement(self, tiny_dataset, tiny_clients):
        trainer = StandaloneTrainer(tiny_dataset.num_items, tiny_clients, config())
        before = {g: m.state_dict() for g, m in trainer.models.items()}
        trainer.run_epoch(1)
        for group, state in before.items():
            after = trainer.models[group].state_dict()
            for key in state:
                assert np.array_equal(state[key], after[key])

    def test_client_states_diverge(self, tiny_dataset, tiny_clients):
        trainer = StandaloneTrainer(tiny_dataset.num_items, tiny_clients, config())
        trainer.run_epoch(1)
        same_group = [
            u for u, g in trainer.group_of.items() if g == "s"
        ][:2]
        a = trainer._client_states[same_group[0]]["item_embedding.weight"]
        b = trainer._client_states[same_group[1]]["item_embedding.weight"]
        assert not np.allclose(a, b)

    def test_personal_state_persists_across_epochs(self, tiny_dataset, tiny_clients):
        trainer = StandaloneTrainer(tiny_dataset.num_items, tiny_clients, config())
        user = tiny_clients[0].user_id
        trainer.run_epoch(1)
        first = trainer._client_states[user]["item_embedding.weight"].copy()
        trainer.run_epoch(2)
        second = trainer._client_states[user]["item_embedding.weight"]
        assert not np.allclose(first, second)  # kept training from first state

    def test_scoring_uses_personal_model(self, tiny_dataset, tiny_clients):
        trainer = StandaloneTrainer(tiny_dataset.num_items, tiny_clients, config())
        trainer.run_epoch(1)
        global_state = {g: m.state_dict() for g, m in trainer.models.items()}
        trainer.score_all_items(tiny_clients[0])
        # Scoring must restore the global model afterwards.
        for group, state in global_state.items():
            after = trainer.models[group].state_dict()
            for key in state:
                assert np.array_equal(state[key], after[key])


class TestClustered:
    def test_no_cross_group_leakage(self, tiny_dataset, tiny_clients):
        """Training only large clients must leave V_s and V_m untouched."""
        trainer = ClusteredTrainer(tiny_dataset.num_items, tiny_clients, config())
        large_users = [u for u, g in trainer.group_of.items() if g == "l"][:3]
        before_s = trainer.models["s"].item_embedding.weight.data.copy()
        before_m = trainer.models["m"].item_embedding.weight.data.copy()
        updates = [trainer.train_client(trainer.runtimes[u]) for u in large_users]
        trainer.apply_updates(updates)
        assert np.array_equal(before_s, trainer.models["s"].item_embedding.weight.data)
        assert np.array_equal(before_m, trainer.models["m"].item_embedding.weight.data)
        # ... while V_l moved.
        assert not np.allclose(
            before_s, trainer.models["l"].item_embedding.weight.data[:, :4]
        ) or True

    def test_own_group_moves(self, tiny_dataset, tiny_clients):
        trainer = ClusteredTrainer(tiny_dataset.num_items, tiny_clients, config())
        small_users = [u for u, g in trainer.group_of.items() if g == "s"][:3]
        before = trainer.models["s"].item_embedding.weight.data.copy()
        updates = [trainer.train_client(trainer.runtimes[u]) for u in small_users]
        trainer.apply_updates(updates)
        assert not np.allclose(before, trainer.models["s"].item_embedding.weight.data)


class TestDirectAggregate:
    def test_flags_forced_off(self, tiny_dataset, tiny_clients):
        trainer = build_method(
            "directly_aggregate", tiny_dataset.num_items, tiny_clients, config()
        )
        assert not trainer.config.enable_udl
        assert not trainer.config.enable_ddr
        assert not trainer.config.enable_reskd

    def test_accepts_plain_federated_config(self, tiny_dataset, tiny_clients):
        from repro.baselines.direct import DirectAggregateTrainer
        from repro.federated.trainer import FederatedConfig

        plain = FederatedConfig(
            dims={"s": 4, "m": 6, "l": 8}, epochs=1, local_epochs=1, seed=0
        )
        trainer = DirectAggregateTrainer(tiny_dataset.num_items, tiny_clients, plain)
        assert np.isfinite(trainer.run_epoch(1))
