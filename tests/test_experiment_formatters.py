"""Formatter tests for every table/figure module, on fabricated results.

These run without any training, so they pin down the report layout and
the row/column order the benchmarks rely on.
"""

import pytest

from repro.experiments.fig6 import format_fig6
from repro.experiments.fig7 import format_fig7
from repro.experiments.fig8 import format_fig8
from repro.experiments.runner import RunResult
from repro.experiments.table2 import format_table2, winner_per_dataset
from repro.experiments.table4 import ABLATION_LADDER, format_table4
from repro.experiments.table5 import format_table5
from repro.experiments.table6 import format_table6
from repro.experiments.table7 import SIZE_SETTINGS, format_table7


def fake_run(method="hetefedrec", ndcg=0.1, recall=0.2, dataset="ml", arch="ncf"):
    return RunResult(
        dataset=dataset,
        method=method,
        arch=arch,
        profile="smoke",
        recall=recall,
        ndcg=ndcg,
        group_recall={"s": recall, "m": recall, "l": recall},
        group_ndcg={"s": ndcg * 0.8, "m": ndcg, "l": ndcg * 1.2},
        ndcg_curve=[(1, ndcg / 2), (2, ndcg)],
        communication_total=1000,
        communication_per_round=10.0,
        collapse={"s": 0.1, "m": 0.2, "l": 0.3},
    )


class TestTable2Formatter:
    def grid(self):
        return {
            "ncf": {
                "ml": {
                    "all_small": fake_run("all_small", 0.10),
                    "hetefedrec": fake_run("hetefedrec", 0.15),
                },
                "anime": {
                    "all_small": fake_run("all_small", 0.12, dataset="anime"),
                    "hetefedrec": fake_run("hetefedrec", 0.11, dataset="anime"),
                },
            }
        }

    def test_layout(self):
        text = format_table2(self.grid())
        assert "Table II (ncf)" in text
        assert "HeteFedRec(Ours)" in text
        assert "ml:Recall" in text and "anime:NDCG" in text

    def test_winners(self):
        winners = winner_per_dataset(self.grid())
        assert winners["ncf"]["ml"] == "hetefedrec"
        assert winners["ncf"]["anime"] == "all_small"


class TestFig6Formatter:
    def test_group_columns(self):
        results = {"ncf": {"ml": {"hetefedrec": fake_run()}}}
        text = format_fig6(results)
        assert "U_s NDCG" in text and "U_l NDCG" in text


class TestFig7Formatter:
    def test_series_layout(self):
        results = {"ncf": {"all_small": fake_run("all_small")}}
        text = format_fig7(results)
        assert "Fig. 7" in text
        assert "All Small" in text


class TestFig8Formatter:
    def test_alpha_series(self):
        series = [(0.25, fake_run(ndcg=0.2)), (1.0, fake_run(ndcg=0.1))]
        text = format_fig8({"ncf": series})
        assert "α → NDCG@20" in text
        assert "0.2000" in text


class TestTable4Formatter:
    def test_ladder_rows_in_paper_order(self):
        per_dataset = {
            "ml": {label: fake_run(ndcg=0.1 - i * 0.01)
                   for i, (label, _) in enumerate(ABLATION_LADDER)}
        }
        text = format_table4({"ncf": per_dataset})
        lines = text.splitlines()
        positions = [
            next(i for i, line in enumerate(lines) if line.startswith(label))
            for label, _ in ABLATION_LADDER
        ]
        assert positions == sorted(positions)


class TestTable5Formatter:
    def test_variants(self):
        results = {"ncf": {"ml": {"+ DDR": 0.1, "- DDR": 0.9}}}
        text = format_table5(results)
        assert "- DDR" in text and "+ DDR" in text
        assert "higher = more collapsed" in text


class TestTable6Formatter:
    def test_five_columns(self):
        row = {
            label: fake_run(ndcg=0.1)
            for label in ("All Small", "5:3:2", "1:1:1", "2:3:5", "All Large")
        }
        text = format_table6({"ncf": {"ml": row}})
        for column in ("All Small", "5:3:2", "2:3:5", "All Large"):
            assert column in text


class TestTable7Formatter:
    def test_size_columns(self):
        per_setting = {
            label: {
                m: fake_run(m) for m in ("all_small", "all_large", "hetefedrec")
            }
            for label, _ in SIZE_SETTINGS
        }
        text = format_table7({"ncf": per_setting})
        assert "{8,16,32}" in text and "{32,64,128}" in text
