"""Tests for the phased secure-aggregation protocol.

Covers the Shamir primitive, both state machines' fault handling
(drops, duplicates, late and malformed messages at every phase), the
never-both reveal rule, below-threshold aborts into the availability
path, exactness of the masked sum under arbitrary fault plans
(property-based), uniformity of the masked wire bytes, and the honest
per-phase wire metering.
"""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated.availability import AvailabilityConfig
from repro.federated.payload import ClientUpdate, SparseRowDelta
from repro.federated.secure_agg import (
    FixedPointCodec,
    SecureAggregationConfig,
    secure_aggregate_updates,
)
from repro.federated.secure_protocol import (
    ADVERTISE,
    MASKED_INPUT,
    PHASES,
    SHAMIR_PRIME,
    SHARES,
    UNMASK,
    FaultPlan,
    ProtocolError,
    SecureAggregationClient,
    SecureAggregationServer,
    SecureRoundAbort,
    run_secure_round,
    shamir_reconstruct,
    shamir_share,
)
from repro.federated.trainer import FederatedConfig, FederatedTrainer

NUM_ITEMS = 12
DIMS = {"s": 4}
CFG = SecureAggregationConfig()


def make_updates(ids, dim=4, num_items=NUM_ITEMS, seed=0):
    rng = np.random.default_rng(seed)
    return [
        ClientUpdate(
            user_id=uid,
            group="s",
            embedding_delta=rng.normal(0, 0.5, size=(num_items, dim)),
        )
        for uid in ids
    ]


def plain_fixed_point_sum(updates, ids, dim=4):
    """What the survivors' exact fixed-point sum should decode to."""
    codec = FixedPointCodec(CFG.precision_bits, CFG.clip_range)
    chosen = [u for u in updates if int(u.user_id) in set(ids)]
    total = np.zeros(NUM_ITEMS * dim, dtype=np.uint64)
    for update in chosen:
        flat = np.asarray(update.embedding_delta, dtype=np.float64).ravel()
        total = total + codec.encode(flat)
    return codec.decode(total).reshape(NUM_ITEMS, dim)


class TestShamir:
    def test_round_trip_exactly_threshold_shares(self):
        secret = 0xDEADBEEFCAFE
        shares = shamir_share(secret, [1, 2, 3, 4, 5], threshold=3, salt="t")
        for subset in ([1, 2, 3], [2, 4, 5], [1, 3, 5]):
            assert shamir_reconstruct({x: shares[x] for x in subset}) == secret

    def test_below_threshold_reveals_nothing(self):
        secret = 123456789
        shares = shamir_share(secret, [1, 2, 3, 4], threshold=3, salt="t")
        assert shamir_reconstruct({1: shares[1], 2: shares[2]}) != secret

    def test_sharing_is_deterministic(self):
        a = shamir_share(42, [1, 2, 3], threshold=2, salt="s")
        b = shamir_share(42, [1, 2, 3], threshold=2, salt="s")
        assert a == b
        assert shamir_share(42, [1, 2, 3], threshold=2, salt="other") != a

    def test_validation(self):
        with pytest.raises(ValueError):
            shamir_share(1, [1, 1, 2], threshold=2, salt="t")
        with pytest.raises(ValueError):
            shamir_share(1, [0], threshold=1, salt="t")
        with pytest.raises(ValueError):
            shamir_share(1, [1], threshold=0, salt="t")
        with pytest.raises(ValueError):
            shamir_reconstruct({})

    def test_large_secret_stays_in_field(self):
        secret = SHAMIR_PRIME - 2
        shares = shamir_share(secret, [7, 9, 11], threshold=3, salt="t")
        assert shamir_reconstruct(shares) == secret


class TestClientStateMachine:
    def test_phases_enforced_in_order(self):
        client = SecureAggregationClient(1, 5, CFG)
        with pytest.raises(ProtocolError):
            client.masked_input(np.zeros(4))
        client.advertise()
        with pytest.raises(ProtocolError):
            client.advertise()

    def test_pair_seed_symmetry(self):
        a = SecureAggregationClient(1, 3, CFG)
        b = SecureAggregationClient(2, 3, CFG)
        adverts = {1: a.advertise(), 2: b.advertise()}
        a.make_shares([1, 2], 1, adverts)
        b.make_shares([1, 2], 1, adverts)
        assert a.pair_seed(2) == b.pair_seed(1)

    def test_unmask_refuses_survivor_dropout_overlap(self):
        """The never-both rule: revealing both mask kinds for one id
        would let the server unmask a delivered input."""
        client = _client_at_unmask(1, roster=[1, 2, 3])
        with pytest.raises(ProtocolError, match="both survivor"):
            client.unmask_response(survivors=[1, 2], dropouts=[2, 3])

    def test_unmask_refuses_unknown_ids(self):
        client = _client_at_unmask(1, roster=[1, 2, 3])
        with pytest.raises(ProtocolError, match="outside the share roster"):
            client.unmask_response(survivors=[1, 2, 99], dropouts=[3])


def _client_at_unmask(uid, roster):
    clients = {u: SecureAggregationClient(u, 1, CFG) for u in roster}
    adverts = {u: c.advertise() for u, c in clients.items()}
    bundles = {u: c.make_shares(roster, 2, adverts) for u, c in clients.items()}
    target = clients[uid]
    target.receive_shares(
        [s for b in bundles.values() for s in b if s.receiver == uid], roster
    )
    target.masked_input(np.zeros(4))
    return target


class TestServerStateMachine:
    def _server(self, ids=(1, 2, 3, 4), size=8):
        return SecureAggregationServer(ids, size, round_id=1, config=CFG)

    def test_unknown_sender_raises(self):
        server = self._server()
        advert = SecureAggregationClient(99, 1, CFG).advertise()
        with pytest.raises(ProtocolError, match="unknown client"):
            server.receive_advertisement(advert)

    def test_duplicates_first_message_wins(self):
        server = self._server()
        advert = SecureAggregationClient(1, 1, CFG).advertise()
        assert server.receive_advertisement(advert)
        assert not server.receive_advertisement(advert)
        assert server.duplicates_ignored == 1

    def test_late_messages_rejected_and_counted(self):
        server = self._server(ids=(1, 2))
        clients = {u: SecureAggregationClient(u, 1, CFG) for u in (1, 2)}
        assert server.receive_advertisement(clients[1].advertise())
        late = clients[2].advertise()
        server.close_advertise()
        assert not server.receive_advertisement(late)
        assert server.late_rejected == 1

    def test_wrong_round_advertisement_rejected(self):
        server = self._server()
        stale = SecureAggregationClient(1, 99, CFG).advertise()
        assert not server.receive_advertisement(stale)
        assert server.late_rejected == 1

    def test_below_threshold_roster_aborts(self):
        server = SecureAggregationServer(
            range(6), 8, 1, SecureAggregationConfig(threshold_fraction=0.5)
        )
        assert server.threshold == 3
        server.receive_advertisement(SecureAggregationClient(0, 1, CFG).advertise())
        with pytest.raises(SecureRoundAbort) as info:
            server.close_advertise()
        assert info.value.phase == ADVERTISE
        assert info.value.survivors == 1 and info.value.threshold == 3

    def test_spoofed_share_bundle_raises(self):
        server = self._server(ids=(1, 2))
        clients = {u: SecureAggregationClient(u, 1, CFG) for u in (1, 2)}
        for c in clients.values():
            server.receive_advertisement(c.advertise())
        roster = server.close_advertise()
        adverts = {u: server._advertisements[u] for u in roster}
        bundle = clients[1].make_shares(roster, server.threshold, adverts)
        with pytest.raises(ProtocolError, match="spoofs"):
            server.receive_shares(2, bundle)

    def test_corrupted_masked_input_treated_as_dropout(self):
        ids = [1, 2, 3]
        server = SecureAggregationServer(ids, NUM_ITEMS * 4, 1, CFG)
        clients = {u: SecureAggregationClient(u, 1, CFG) for u in ids}
        for c in clients.values():
            server.receive_advertisement(c.advertise())
        roster = server.close_advertise()
        adverts = {u: server._advertisements[u] for u in roster}
        for u, c in clients.items():
            server.receive_shares(u, c.make_shares(roster, server.threshold, adverts))
        share_roster = server.close_shares()
        for u, c in clients.items():
            c.receive_shares(server.shares_for(u), share_roster)
        good = {
            u: c.masked_input(np.full(NUM_ITEMS * 4, 0.25))
            for u, c in clients.items()
        }
        # Client 3's vector is tampered in flight: MAC check must fail.
        tampered = type(good[3])(
            client_id=3, round_id=1,
            vector=good[3].vector + np.uint64(1), mac=good[3].mac,
        )
        assert server.receive_masked_input(good[1])
        assert server.receive_masked_input(good[2])
        assert not server.receive_masked_input(tampered)
        assert server.rejected_inputs == 1
        survivors, dropouts = server.close_masked_inputs()
        assert survivors == [1, 2] and dropouts == [3]


class TestRunSecureRound:
    def test_zero_faults_matches_legacy_session_bitwise(self):
        updates = make_updates([3, 7, 11, 19], seed=1)
        legacy_emb, legacy_heads = secure_aggregate_updates(
            updates, DIMS, CFG, round_id=1
        )
        emb, heads, report = run_secure_round(updates, DIMS, CFG, round_id=1)
        assert not report.aborted
        assert report.survivors == [3, 7, 11, 19]
        np.testing.assert_array_equal(emb["s"], legacy_emb["s"])
        assert set(heads) == set(legacy_heads)

    @pytest.mark.parametrize("phase", PHASES)
    def test_dropout_at_each_phase_conserves_survivor_sum(self, phase):
        ids = [1, 2, 3, 4, 5, 6]
        updates = make_updates(ids, seed=2)
        faults = FaultPlan(drops={phase: frozenset({2, 5})})
        emb, _, report = run_secure_round(updates, DIMS, CFG, 1, faults)
        assert not report.aborted
        assert sorted(report.dropouts_by_phase[phase]) == [2, 5]
        if phase == UNMASK:
            # Unmask-droppers delivered masked input: still survivors.
            expected_survivors = ids
        else:
            expected_survivors = [1, 3, 4, 6]
        assert report.survivors == expected_survivors
        np.testing.assert_array_equal(
            emb["s"], plain_fixed_point_sum(updates, report.survivors)
        )

    @pytest.mark.parametrize("phase", PHASES)
    def test_duplicates_at_each_phase_are_ignored(self, phase):
        updates = make_updates([1, 2, 3, 4], seed=3)
        clean_emb, _, _ = run_secure_round(updates, DIMS, CFG, 1)
        faults = FaultPlan(duplicates={phase: frozenset({1, 3})})
        emb, _, report = run_secure_round(updates, DIMS, CFG, 1, faults)
        assert report.duplicates_ignored == 2
        np.testing.assert_array_equal(emb["s"], clean_emb["s"])

    def test_sequential_multi_phase_faults(self):
        """Drops and duplicates landing at different phases in one round."""
        ids = list(range(1, 9))
        updates = make_updates(ids, seed=4)
        faults = FaultPlan(
            drops={ADVERTISE: frozenset({1}), SHARES: frozenset({2}),
                   MASKED_INPUT: frozenset({3}), UNMASK: frozenset({4})},
            duplicates={SHARES: frozenset({5}), UNMASK: frozenset({6})},
        )
        emb, _, report = run_secure_round(updates, DIMS, CFG, 1, faults)
        assert not report.aborted
        assert report.survivors == [4, 5, 6, 7, 8]
        assert report.duplicates_ignored == 2
        np.testing.assert_array_equal(
            emb["s"], plain_fixed_point_sum(updates, report.survivors)
        )

    def test_below_threshold_abort_reports_cleanly(self):
        updates = make_updates([1, 2, 3, 4, 5, 6], seed=5)
        faults = FaultPlan(drops={MASKED_INPUT: frozenset({1, 2, 3, 4})})
        emb, heads, report = run_secure_round(updates, DIMS, CFG, 1, faults)
        assert report.aborted and report.abort_phase == MASKED_INPUT
        assert emb == {} and heads == {}
        assert report.survivors == []

    def test_duplicate_user_ids_rejected(self):
        updates = make_updates([1, 1], seed=6)
        with pytest.raises(ValueError, match="duplicate user ids"):
            run_secure_round(updates, DIMS, CFG, 1)

    def test_empty_round_rejected(self):
        with pytest.raises(ValueError):
            run_secure_round([], DIMS, CFG, 1)

    def test_sparse_and_dense_updates_agree(self):
        dense = make_updates([1, 2, 3], seed=7)
        sparse = [
            ClientUpdate(
                user_id=u.user_id, group=u.group,
                embedding_delta=SparseRowDelta.from_dense(u.embedding_delta),
            )
            for u in dense
        ]
        emb_dense, _, _ = run_secure_round(dense, DIMS, CFG, 1)
        emb_sparse, _, _ = run_secure_round(sparse, DIMS, CFG, 1)
        np.testing.assert_array_equal(emb_dense["s"], emb_sparse["s"])

    def test_wire_accounting_covers_every_phase(self):
        updates = make_updates([1, 2, 3, 4, 5], seed=8)
        _, _, report = run_secure_round(updates, DIMS, CFG, 1)
        for phase in PHASES:
            assert report.phase_wire[phase] > 0.0, phase
        assert report.protocol_overhead == pytest.approx(
            sum(report.phase_wire.values())
        )
        assert report.masked_vector_scalars == NUM_ITEMS * 4
        payload = report.as_dict()
        assert payload["survivors"] == [1, 2, 3, 4, 5]

    def test_aborted_round_charges_wasted_masked_vectors(self):
        updates = make_updates([1, 2, 3, 4, 5, 6], seed=9)
        faults = FaultPlan(drops={UNMASK: frozenset({1, 2, 3, 4, 5})})
        _, _, report = run_secure_round(updates, DIMS, CFG, 1, faults)
        assert report.aborted and report.abort_phase == UNMASK
        # All six masked vectors hit the wire before the abort.
        assert report.phase_wire[MASKED_INPUT] >= 6 * NUM_ITEMS * 4


class TestMaskedSumProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        n=st.integers(min_value=2, max_value=7),
        drop_bits=st.integers(min_value=0, max_value=127),
        phase=st.sampled_from(PHASES),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_masked_sum_equals_plain_sum_exactly(self, n, drop_bits, phase, seed):
        """For any participant set and any dropout subset at any phase,
        the decoded sum equals the plain fixed-point sum of the
        survivors bit for bit (or the round aborts cleanly)."""
        ids = list(range(1, n + 1))
        drops = frozenset(uid for uid in ids if (drop_bits >> (uid - 1)) & 1)
        updates = make_updates(ids, seed=seed)
        faults = FaultPlan(drops={phase: drops})
        emb, _, report = run_secure_round(updates, DIMS, CFG, 1, faults)
        if report.aborted:
            assert len(ids) - len(drops) < report.threshold or report.aborted
            return
        np.testing.assert_array_equal(
            emb["s"], plain_fixed_point_sum(updates, report.survivors)
        )

    def test_masked_bytes_are_uniform(self):
        """Chi-square over the byte histogram of one masked upload: the
        wire image of a constant vector must be indistinguishable from
        uniform (fixed seed, so the statistic is deterministic)."""
        size = 4096
        ids = [1, 2, 3]
        clients = {u: SecureAggregationClient(u, 1, CFG) for u in ids}
        adverts = {u: c.advertise() for u, c in clients.items()}
        bundles = {u: c.make_shares(ids, 2, adverts) for u, c in clients.items()}
        target = clients[1]
        target.receive_shares(
            [s for b in bundles.values() for s in b if s.receiver == 1], ids
        )
        message = target.masked_input(np.full(size, 0.125))
        data = np.frombuffer(
            np.ascontiguousarray(message.vector).tobytes(), dtype=np.uint8
        )
        counts = np.bincount(data, minlength=256)
        expected = data.size / 256.0
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # df = 255; critical value at p = 0.999 is ≈ 330.
        assert chi2 < 330.0, f"masked bytes not uniform: chi2 = {chi2:.1f}"

    def test_plaintext_bytes_are_not_uniform(self):
        """Control: the unmasked encoding of the same vector is wildly
        non-uniform — the masking, not the codec, provides the hiding."""
        codec = FixedPointCodec(CFG.precision_bits, CFG.clip_range)
        encoded = codec.encode(np.full(4096, 0.125))
        data = np.frombuffer(encoded.tobytes(), dtype=np.uint8)
        counts = np.bincount(data, minlength=256)
        expected = data.size / 256.0
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 > 330.0


class TestTrainerIntegration:
    def _config(self, **overrides):
        base = dict(
            arch="ncf",
            dims={"s": 4, "m": 6, "l": 8},
            epochs=1,
            clients_per_round=16,
            local_epochs=1,
            lr=0.05,
            seed=0,
        )
        base.update(overrides)
        return FederatedConfig(**base)

    def _trainer(self, dataset, clients, **overrides):
        from repro.core.grouping import divide_clients

        group_of = divide_clients(clients)
        return FederatedTrainer(
            dataset.num_items, clients, group_of, self._config(**overrides)
        )

    def test_zero_dropout_secure_matches_plain_within_bound(
        self, tiny_dataset, tiny_clients
    ):
        plain = self._trainer(tiny_dataset, tiny_clients)
        secure = self._trainer(
            tiny_dataset, tiny_clients,
            secure_aggregation=SecureAggregationConfig(),
        )
        plain.fit()
        secure.fit()
        codec = FixedPointCodec(CFG.precision_bits, CFG.clip_range)
        # Per aggregated scalar: one quantisation error per contributor
        # per round; this loose bound is the documented guarantee.
        bound = codec.quantisation_error_bound() * 16 * plain._round_counter * 10
        for group in plain.groups:
            a = plain.models[group].item_embedding.weight.data
            b = secure.models[group].item_embedding.weight.data
            assert np.max(np.abs(a - b)) <= bound, f"group {group}"

    def test_fault_hook_dropouts_still_train(self, tiny_dataset, tiny_clients):
        trainer = self._trainer(
            tiny_dataset, tiny_clients,
            secure_aggregation=SecureAggregationConfig(),
        )
        injected = []

        def faults(round_id, ids):
            victims = frozenset(sorted(ids)[:2])
            injected.append(victims)
            return FaultPlan(drops={PHASES[round_id % 4]: victims})

        trainer._secure_fault_plan = faults
        history = trainer.fit()
        assert injected, "fault hook never consulted"
        assert np.isfinite(history.records[-1].train_loss)

    def test_abort_routes_into_straggler_buffer(self, tiny_dataset, tiny_clients):
        trainer = self._trainer(
            tiny_dataset, tiny_clients,
            secure_aggregation=SecureAggregationConfig(),
            availability=AvailabilityConfig(straggler_rate=0.01, seed=1),
        )
        trainer._secure_fault_plan = lambda round_id, ids: FaultPlan(
            drops={ADVERTISE: frozenset(ids)}
        )
        buffered = []
        updates = trainer._train_clients(
            trainer.participation_rounds(1)[0]
        )
        trainer.apply_updates(updates)
        buffered = trainer._straggler_buffer.drain()
        assert len(buffered) == len(updates), "aborted round lost updates"

    def test_abort_without_buffer_counts_dropped(self, tiny_dataset, tiny_clients):
        trainer = self._trainer(
            tiny_dataset, tiny_clients,
            secure_aggregation=SecureAggregationConfig(),
        )
        trainer._secure_fault_plan = lambda round_id, ids: FaultPlan(
            drops={ADVERTISE: frozenset(ids)}
        )
        updates = trainer._train_clients(trainer.participation_rounds(1)[0])
        with pytest.warns(RuntimeWarning, match="aborted"):
            trainer.apply_updates(updates)
        assert trainer.meter.dropped_updates == len(updates)

    def test_secure_uploads_metered_dense_plus_protocol(
        self, tiny_dataset, tiny_clients
    ):
        """Satellite: Table III honesty — the secure run's wire cost is
        the dense masked vectors plus per-phase key/share traffic, which
        must exceed the plain sparse-upload accounting."""
        plain = self._trainer(tiny_dataset, tiny_clients)
        secure = self._trainer(
            tiny_dataset, tiny_clients,
            secure_aggregation=SecureAggregationConfig(),
        )
        plain.fit()
        secure.fit()
        assert secure.meter.protocol, "per-phase protocol ledger missing"
        assert set(secure.meter.protocol) == set(PHASES)
        assert secure.meter.total_upload > plain.meter.total_upload
        assert secure.meter.total > plain.meter.total
        # Downloads are identical: the protocol only changes uploads.
        assert secure.meter.total_download == plain.meter.total_download
        state = secure.meter.export_state()
        assert state["protocol"] == secure.meter.protocol
