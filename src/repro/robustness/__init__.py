"""Robustness: poisoning attacks and robust aggregation for FedRecs.

The paper's related work (Section II-A) surveys how FedRecs "are
susceptible to manipulation by malicious users who upload poisoned model
updates" (PipAttack [44], FedRecAttack [45], [46]).  This subpackage
reproduces that threat model against every trainer in the repo —
including HeteFedRec, whose heterogeneous aggregation is a *new* attack
surface (a poisoned narrow update contaminates the prefix of every wider
table) — together with the standard server-side defences.

* :mod:`repro.robustness.attacks` — malicious-client behaviours
  (random-noise, sign-flip/model poisoning, target-item promotion);
* :mod:`repro.robustness.defenses` — robust aggregators (server-side
  norm clipping, per-row trimmed mean / median, multi-Krum selection);
* :mod:`repro.robustness.harness` — :class:`AdversarialHeteFedRec`, a
  HeteFedRec trainer with a malicious sub-population and an optional
  defence;
* :mod:`repro.robustness.metrics` — attack-success measures
  (exposure-rate@K of a promoted item).

This is defensive-security tooling: it exists to measure and harden the
aggregation rules, mirroring the published attack evaluations.
"""

from repro.robustness.attacks import AttackConfig, choose_malicious, poison_update
from repro.robustness.defenses import (
    RobustAggregationConfig,
    krum_select,
    robust_embedding_aggregate,
    server_clip_updates,
)
from repro.robustness.harness import AdversarialHeteFedRec
from repro.robustness.metrics import exposure_at_k, prediction_shift

__all__ = [
    "AttackConfig",
    "choose_malicious",
    "poison_update",
    "RobustAggregationConfig",
    "krum_select",
    "robust_embedding_aggregate",
    "server_clip_updates",
    "AdversarialHeteFedRec",
    "exposure_at_k",
    "prediction_shift",
]
