"""Benchmark: Table VII — model-size setting sweep on MovieLens.

Shape targets (paper): FedRec quality falls once sizes exceed what the
data supports, and at every setting heterogeneous sizing beats forcing
the large model on everyone.  The paper's interior optimum sits at
{8,16,32}; on the 1/25-scale synthetic analogue the optimum shifts left
(less preference complexity to express), so the asserted shape is the
scale-robust part: decline beyond the optimum, and HeteFedRec > All
Large per setting.  See EXPERIMENTS.md.
"""

from benchmarks.conftest import SWEEP_ARCHS
from repro.experiments.table7 import SIZE_SETTINGS, format_table7, run_table7


def test_table7_model_sizes(benchmark, artifact):
    results = benchmark.pedantic(
        lambda: run_table7("bench", archs=SWEEP_ARCHS),
        rounds=1,
        iterations=1,
    )
    artifact("table7_modelsize", format_table7(results))

    labels = [label for label, _ in SIZE_SETTINGS]
    for arch, per_setting in results.items():
        hete = {label: per_setting[label]["hetefedrec"].ndcg for label in labels}
        print(f"\n{arch} HeteFedRec by size:", {k: round(v, 4) for k, v in hete.items()})
        # Oversizing hurts: quality declines once the range exceeds the
        # data-appropriate setting (paper: rise-then-fall; at 1/25 data
        # scale the peak sits at the smallest setting, so the measurable
        # part of the shape is the fall).
        assert hete["{8,16,32}"] > hete["{32,64,128}"], arch
        # At every setting, heterogeneous sizing beats forcing the large
        # model on everyone (paper: 'our HeteFedRec still outperforms
        # All Large').
        for label in labels:
            setting = per_setting[label]
            assert (
                setting["hetefedrec"].ndcg >= 0.9 * setting["all_large"].ndcg
            ), (arch, label)
