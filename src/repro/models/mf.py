"""Generalized matrix factorization (GMF) — the pure dot-product family.

The paper's framework is base-model agnostic ("compatible with the
majority of deep learning-based recommendation models", Section III-B);
NCF and LightGCN are the two it evaluates.  GMF (He et al., 2017, §3.1)
is the natural third member and the one the federated-recommendation
pioneers ([12], FCF) actually used: the logit is a learned linear
function of the elementwise product ``u ⊙ v``, which at initialisation
is exactly the classic matrix-factorisation inner product.

GMF is the cleanest probe of *embedding-width* capacity — there is no
MLP path that could compensate for a narrow table — so the model-size
experiments (Table VII) are sharpest under it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.models.base import BaseRecommender, ScoringHead, tile_user


class GMF(BaseRecommender):
    """Scoring through the head's GMF path only.

    The shared :class:`ScoringHead` already contains both an MLP and a
    GMF path; GMF-the-model routes around the MLP so the logit is
    ``w · (u ⊙ v)`` alone.  The MLP parameters still exist (they keep Θ's
    shape identical across architectures, which Table III's accounting
    and the head-aggregation path rely on) but receive zero gradient.
    """

    arch = "mf"
    batched_scoring = True

    def score_matrix(
        self,
        user_mat: np.ndarray,
        width: Optional[int] = None,
        head: Optional[ScoringHead] = None,
        train_items=None,  # GMF scoring has no propagation stage
    ) -> np.ndarray:
        user_mat, item_mat, head = self._prefix_block(user_mat, width, head)
        return head.gmf_matrix(user_mat, item_mat)

    def _score(
        self,
        user_vec: Tensor,
        item_vecs: Tensor,
        item_ids: np.ndarray,
        train_item_ids: Optional[np.ndarray],
        head: ScoringHead,
        width: int,
    ) -> Tensor:
        batch = item_vecs.shape[0]
        user_mat = tile_user(user_vec, batch)
        return head.gmf(user_mat * item_vecs).reshape(-1)
