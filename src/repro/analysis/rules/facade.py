"""Rule: examples import only the public facade.

``repro.api`` is the compatibility surface (PR 8): everything an
external consumer needs, re-exported with stability guarantees.  An
example that reaches into ``repro.federated.trainer`` directly is
documentation teaching users to depend on internals the next refactor
is free to move.  So under ``examples/``, the only legal spellings are

* ``from repro.api import ...``
* imports from outside the ``repro`` package entirely

``import repro.api`` is *also* flagged — attribute access on the
package module encourages ``repro.api.foo``-style drift and, worse,
``import repro.x.y`` binds the top-level package and makes every
submodule reachable.  (These are exactly the semantics the facade test
in ``tests/test_api_facade.py`` has enforced since PR 8; the rule is
that test, runnable at lint time.)
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.framework import FileContext, Finding, Rule, register

FACADE_MODULE = "repro.api"


@register
class FacadeOnlyRule(Rule):
    name = "facade-only"
    description = (
        "examples/ may import repro only via `from repro.api import ...` "
        "— internals are not a public surface"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.logical.startswith("examples/"):
            return []
        out: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                root = module.split(".")[0]
                if root == "repro" and module != FACADE_MODULE:
                    out.append(self.finding(
                        ctx, node,
                        f"`from {module} import ...` bypasses the facade; "
                        f"import from {FACADE_MODULE} instead",
                    ))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "repro":
                        out.append(self.finding(
                            ctx, node,
                            f"`import {alias.name}` binds the package "
                            f"module; use `from {FACADE_MODULE} import ...`",
                        ))
        return out
