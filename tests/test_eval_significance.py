"""Tests for the paired significance machinery."""

import numpy as np
import pytest

from repro.eval.evaluator import EvaluationResult
from repro.eval.significance import (
    BootstrapResult,
    compare_results,
    paired_bootstrap,
    sign_test_pvalue,
)


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self):
        rng = np.random.default_rng(0)
        b = rng.uniform(0, 0.2, 200)
        a = b + 0.1 + rng.normal(0, 0.01, 200)
        result = paired_bootstrap(a, b, seed=1)
        assert result.mean_difference == pytest.approx(0.1, abs=0.01)
        assert result.significant
        assert result.win_probability > 0.99

    def test_identical_methods_not_significant(self):
        values = np.random.default_rng(1).uniform(0, 1, 100)
        result = paired_bootstrap(values, values.copy(), seed=0)
        assert result.mean_difference == 0.0
        assert not result.significant

    def test_noise_only_not_significant(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(0, 1, 50)
        b = a + rng.normal(0, 0.5, 50)  # huge noise, no systematic gap
        result = paired_bootstrap(a, b, seed=0, num_samples=500)
        assert isinstance(result, BootstrapResult)
        assert result.ci_low < 0 < result.ci_high or abs(result.mean_difference) > 0.1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            paired_bootstrap(np.zeros(0), np.zeros(0))

    def test_deterministic_with_seed(self):
        rng = np.random.default_rng(3)
        a, b = rng.uniform(size=30), rng.uniform(size=30)
        first = paired_bootstrap(a, b, seed=7)
        second = paired_bootstrap(a, b, seed=7)
        assert first == second


class TestSignTest:
    def test_all_wins_tiny_pvalue(self):
        a = np.ones(20)
        b = np.zeros(20)
        assert sign_test_pvalue(a, b) < 1e-4

    def test_balanced_large_pvalue(self):
        a = np.array([1.0, 0.0] * 10)
        b = np.array([0.0, 1.0] * 10)
        assert sign_test_pvalue(a, b) > 0.5

    def test_all_ties(self):
        values = np.ones(10)
        assert sign_test_pvalue(values, values) == 1.0

    def test_two_sided_symmetry(self):
        rng = np.random.default_rng(4)
        a, b = rng.uniform(size=25), rng.uniform(size=25)
        assert sign_test_pvalue(a, b) == pytest.approx(sign_test_pvalue(b, a))


class TestCompareResults:
    def make_result(self, users, values):
        values = np.asarray(values, dtype=float)
        return EvaluationResult(
            recall=float(values.mean()),
            ndcg=float(values.mean()),
            k=20,
            per_user_recall=values,
            per_user_ndcg=values,
            evaluated_users=np.asarray(users),
        )

    def test_aligns_users_by_id(self):
        a = self.make_result([1, 2, 3], [0.9, 0.8, 0.7])
        b = self.make_result([3, 2, 1], [0.1, 0.2, 0.3])  # reversed order
        result = compare_results(a, b)
        # Aligned per user: gaps are (0.6, 0.6, 0.6) exactly.
        assert result.mean_difference == pytest.approx(0.6)

    def test_no_common_users(self):
        a = self.make_result([1], [0.5])
        b = self.make_result([2], [0.5])
        with pytest.raises(ValueError):
            compare_results(a, b)
