"""Tests for client division into U_s / U_m / U_l."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import (
    GROUP_ORDER,
    divide_clients,
    group_boundaries,
    group_counts,
    homogeneous_assignment,
)
from repro.data.dataset import ClientData


def client(user_id, n_train):
    return ClientData(
        user_id=user_id,
        train_items=np.arange(n_train),
        valid_items=np.array([], dtype=np.int64),
        test_items=np.array([], dtype=np.int64),
    )


class TestBoundaries:
    def test_532(self):
        assert group_boundaries(100, (5, 3, 2)) == [50, 80, 100]

    def test_111(self):
        assert group_boundaries(99, (1, 1, 1)) == [33, 66, 99]

    def test_rounding_never_loses_clients(self):
        for n in range(1, 30):
            cuts = group_boundaries(n, (5, 3, 2))
            assert cuts[-1] == n
            assert all(b <= a for b, a in zip(cuts, cuts[1:]) or [(0, 0)])

    def test_invalid_ratios(self):
        with pytest.raises(ValueError):
            group_boundaries(10, (1, 2))  # wrong arity
        with pytest.raises(ValueError):
            group_boundaries(10, (0, 0, 0))
        with pytest.raises(ValueError):
            group_boundaries(10, (-1, 1, 1))

    @given(
        st.integers(1, 500),
        st.tuples(st.floats(0, 10), st.floats(0, 10), st.floats(0.1, 10)),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, n, ratios):
        cuts = group_boundaries(n, ratios)
        assert cuts[-1] == n
        assert all(0 <= c <= n for c in cuts)
        assert cuts == sorted(cuts)


class TestDivideClients:
    def test_smallest_clients_get_smallest_models(self):
        clients = [client(i, n) for i, n in enumerate([1, 5, 10, 20, 50])]
        assignment = divide_clients(clients, ratios=(2, 2, 1))
        assert assignment[0] == "s"
        assert assignment[4] == "l"

    def test_532_proportions(self):
        clients = [client(i, i) for i in range(100)]
        assignment = divide_clients(clients, ratios=(5, 3, 2))
        counts = group_counts(assignment)
        assert counts == {"s": 50, "m": 30, "l": 20}

    def test_ties_broken_by_user_id(self):
        clients = [client(i, 10) for i in range(4)]  # all identical sizes
        a = divide_clients(clients, ratios=(2, 1, 1))
        b = divide_clients(list(reversed(clients)), ratios=(2, 1, 1))
        assert a == b

    def test_monotone_in_data_size(self):
        """More data never means a smaller model."""
        rng = np.random.default_rng(0)
        clients = [client(i, int(n)) for i, n in enumerate(rng.integers(1, 100, 60))]
        assignment = divide_clients(clients)
        rank = {g: i for i, g in enumerate(GROUP_ORDER)}
        ordered = sorted(clients, key=lambda c: (c.num_train, c.user_id))
        labels = [rank[assignment[c.user_id]] for c in ordered]
        assert labels == sorted(labels)


class TestHomogeneous:
    def test_single_group(self):
        clients = [client(i, i + 1) for i in range(5)]
        assignment = homogeneous_assignment(clients, group="all")
        assert set(assignment.values()) == {"all"}
        assert len(assignment) == 5
