"""Tests for the poisoning attacks, robust aggregators, and harness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HeteFedRecConfig
from repro.federated.aggregation import padded_embedding_aggregate
from repro.federated.payload import ClientUpdate
from repro.robustness import (
    AdversarialHeteFedRec,
    AttackConfig,
    RobustAggregationConfig,
    choose_malicious,
    exposure_at_k,
    krum_select,
    poison_update,
    prediction_shift,
    robust_embedding_aggregate,
    server_clip_updates,
)

DIMS = {"s": 2, "m": 3, "l": 4}


def honest_update(user_id=0, group="s", rows=10, seed=0, touched=(0, 1, 2)):
    rng = np.random.default_rng(seed)
    delta = np.zeros((rows, DIMS[group]))
    for row in touched:
        delta[row] = rng.normal(0, 0.1, size=DIMS[group])
    return ClientUpdate(
        user_id=user_id,
        group=group,
        embedding_delta=delta,
        head_deltas={group: {"w": rng.normal(0, 0.1, size=(3, 2))}},
    )


class TestAttackConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AttackConfig(kind="ddos")
        with pytest.raises(ValueError):
            AttackConfig(fraction=1.5)
        with pytest.raises(ValueError):
            AttackConfig(scale=0.0)
        with pytest.raises(ValueError):
            AttackConfig(target_item=-1)


class TestChooseMalicious:
    def test_fraction_respected(self, tiny_clients):
        malicious = choose_malicious(tiny_clients, 0.25, seed=1)
        assert len(malicious) == round(len(tiny_clients) * 0.25)

    def test_zero_fraction_empty(self, tiny_clients):
        assert choose_malicious(tiny_clients, 0.0) == set()

    def test_deterministic_per_seed(self, tiny_clients):
        assert choose_malicious(tiny_clients, 0.2, seed=5) == choose_malicious(
            tiny_clients, 0.2, seed=5
        )
        assert choose_malicious(tiny_clients, 0.2, seed=5) != choose_malicious(
            tiny_clients, 0.2, seed=6
        )


class TestPoisonUpdate:
    def test_signflip_negates_and_scales(self):
        update = honest_update(seed=1)
        poisoned = poison_update(update, AttackConfig(kind="signflip", scale=5.0),
                                 np.random.default_rng(0))
        assert np.allclose(poisoned.embedding_delta, -5.0 * update.embedding_delta)
        assert np.allclose(
            poisoned.head_deltas["s"]["w"], -5.0 * update.head_deltas["s"]["w"]
        )

    def test_noise_replaces_payload(self):
        update = honest_update(seed=2)
        poisoned = poison_update(update, AttackConfig(kind="noise", scale=10.0),
                                 np.random.default_rng(0))
        # Noise is dense — untouched rows are no longer zero.
        assert np.count_nonzero(poisoned.embedding_delta) > np.count_nonzero(
            update.embedding_delta
        )

    def test_promote_boosts_target_row(self):
        update = honest_update(seed=3, touched=(1, 2, 3))
        config = AttackConfig(kind="promote", target_item=7, scale=10.0)
        poisoned = poison_update(update, config, np.random.default_rng(0))
        target_norm = np.linalg.norm(poisoned.embedding_delta[7])
        honest_norms = np.linalg.norm(update.embedding_delta[[1, 2, 3]], axis=1)
        # The crafted row is exactly scale × the typical honest row norm.
        assert np.isclose(target_norm, 10.0 * honest_norms.mean())
        assert target_norm > honest_norms.max()

    def test_promote_preserves_metadata(self):
        update = honest_update(user_id=42, group="m", seed=4)
        poisoned = poison_update(
            update, AttackConfig(kind="promote", target_item=0),
            np.random.default_rng(0),
        )
        assert poisoned.user_id == 42 and poisoned.group == "m"
        assert poisoned.embedding_delta.shape == update.embedding_delta.shape

    def test_promote_with_empty_support_still_works(self):
        update = ClientUpdate(
            user_id=0, group="s", embedding_delta=np.zeros((5, 2)), head_deltas={}
        )
        poisoned = poison_update(
            update, AttackConfig(kind="promote", target_item=3),
            np.random.default_rng(0),
        )
        assert np.linalg.norm(poisoned.embedding_delta[3]) > 0


class TestServerClip:
    def test_outlier_norm_bounded(self):
        honest = [honest_update(user_id=i, seed=i) for i in range(5)]
        attacker = honest_update(user_id=99, seed=99).scaled(1000.0)
        everyone = honest + [attacker]
        clipped = server_clip_updates(everyone, headroom=3.0)
        norms = [np.linalg.norm(u.embedding_delta) for u in clipped]
        # The bound is headroom × the median over the *round* (attacker included).
        bound = np.median([np.linalg.norm(u.embedding_delta) for u in everyone]) * 3.0
        assert max(norms) <= bound * 1.01
        # The attacker's 1000× amplification is gone.
        attacker_norm = np.linalg.norm(clipped[-1].embedding_delta)
        assert attacker_norm < 0.01 * np.linalg.norm(attacker.embedding_delta)

    def test_honest_updates_untouched(self):
        honest = [honest_update(user_id=i, seed=i) for i in range(5)]
        clipped = server_clip_updates(honest, headroom=3.0)
        for before, after in zip(honest, clipped):
            assert after is before

    def test_empty_round(self):
        assert server_clip_updates([]) == []


class TestRobustEmbeddingAggregate:
    def test_honest_only_close_to_plain_sum(self):
        """With identical honest updates, median·count equals the sum."""
        updates = [honest_update(user_id=i, seed=7) for i in range(5)]
        robust = robust_embedding_aggregate(updates, DIMS, kind="median")
        plain = padded_embedding_aggregate(updates, DIMS, mode="sum")
        assert np.allclose(robust["l"], plain["l"])

    def test_median_resists_minority_outlier(self):
        honest = [honest_update(user_id=i, seed=7) for i in range(4)]
        attacker = honest_update(user_id=9, seed=7).scaled(-100.0)
        robust = robust_embedding_aggregate(honest + [attacker], DIMS, kind="median")
        clean = padded_embedding_aggregate(honest, DIMS, mode="sum")
        # Median of 5 values with 1 outlier is an honest value; scaled by 5
        # contributors instead of 4, so compare directions not magnitudes.
        honest_dir = clean["s"][0] / np.linalg.norm(clean["s"][0])
        robust_dir = robust["s"][0] / np.linalg.norm(robust["s"][0])
        assert np.dot(honest_dir, robust_dir) > 0.99

    def test_trimmed_mean_resists_outliers_both_tails(self):
        honest = [honest_update(user_id=i, seed=7) for i in range(6)]
        low = honest_update(user_id=90, seed=7).scaled(-50.0)
        high = honest_update(user_id=91, seed=7).scaled(50.0)
        robust = robust_embedding_aggregate(
            honest + [low, high], DIMS, kind="trimmed_mean", trim_fraction=0.2
        )
        clean = padded_embedding_aggregate(honest, DIMS, mode="sum")
        honest_dir = clean["s"][0] / np.linalg.norm(clean["s"][0])
        robust_dir = robust["s"][0] / np.linalg.norm(robust["s"][0])
        assert np.dot(honest_dir, robust_dir) > 0.99

    def test_untouched_rows_stay_zero(self):
        updates = [honest_update(user_id=i, seed=i, touched=(0, 1)) for i in range(3)]
        robust = robust_embedding_aggregate(updates, DIMS, kind="median")
        assert np.allclose(robust["l"][5:], 0.0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            robust_embedding_aggregate([honest_update()], DIMS, kind="mode")

    def test_empty_round(self):
        assert robust_embedding_aggregate([], DIMS) == {}


class TestKrum:
    def test_outlier_dropped(self):
        honest = [honest_update(user_id=i, seed=7, touched=(0, 1, 2)) for i in range(6)]
        # A noise attacker is geometrically far from the honest cluster.
        attacker = poison_update(
            honest_update(user_id=99, seed=99, touched=(0, 1, 2)),
            AttackConfig(kind="noise", scale=50.0),
            np.random.default_rng(3),
        )
        survivors = krum_select(honest + [attacker], DIMS, keep_fraction=0.7)
        assert all(u.user_id != 99 for u in survivors)

    def test_keep_fraction_respected(self):
        updates = [honest_update(user_id=i, seed=i) for i in range(10)]
        survivors = krum_select(updates, DIMS, keep_fraction=0.5)
        assert len(survivors) == 5

    def test_tiny_rounds_pass_through(self):
        updates = [honest_update(user_id=i) for i in range(2)]
        assert krum_select(updates, DIMS) == updates

    @given(keep=st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_survivors_are_subset_in_order(self, keep):
        updates = [honest_update(user_id=i, seed=i) for i in range(8)]
        survivors = krum_select(updates, DIMS, keep_fraction=keep)
        ids = [u.user_id for u in survivors]
        assert ids == sorted(ids)
        assert set(ids) <= set(range(8))


class TestDefenseConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RobustAggregationConfig(kind="firewall")
        with pytest.raises(ValueError):
            RobustAggregationConfig(trim_fraction=0.5)
        with pytest.raises(ValueError):
            RobustAggregationConfig(krum_keep=0.0)
        with pytest.raises(ValueError):
            RobustAggregationConfig(clip_headroom=-1)


class TestAdversarialHarness:
    def _config(self, **overrides):
        defaults = dict(epochs=1, clients_per_round=16, local_epochs=2, seed=3)
        defaults.update(overrides)
        return HeteFedRecConfig(**defaults)

    def test_clean_run_matches_hetefedrec(self, tiny_dataset, tiny_clients):
        from repro.core.hetefedrec import HeteFedRec

        clean = HeteFedRec(tiny_dataset.num_items, tiny_clients, self._config())
        adversarial = AdversarialHeteFedRec(
            tiny_dataset.num_items, tiny_clients, self._config(), attack=None
        )
        clean.fit()
        adversarial.fit()
        for group in clean.groups:
            assert np.allclose(
                clean.models[group].item_embedding.weight.data,
                adversarial.models[group].item_embedding.weight.data,
            )

    def test_attack_degrades_training(self, tiny_dataset, tiny_clients):
        attacked = AdversarialHeteFedRec(
            tiny_dataset.num_items,
            tiny_clients,
            self._config(),
            attack=AttackConfig(kind="signflip", fraction=0.3, scale=20.0),
        )
        attacked.fit()
        # The attack must have registered some malicious population.
        assert len(attacked.malicious) == round(len(tiny_clients) * 0.3)
        summary = attacked.summary()
        assert summary["attack"] == "signflip" and summary["defense"] == "none"

    def test_clip_defense_bounds_damage(self, tiny_dataset, tiny_clients):
        """Under a scale attack, clipping must keep the model closer to the
        clean one than no defence does."""
        from repro.core.hetefedrec import HeteFedRec

        clean = HeteFedRec(tiny_dataset.num_items, tiny_clients, self._config())
        clean.fit()
        attack = AttackConfig(kind="signflip", fraction=0.2, scale=50.0, seed=1)
        undefended = AdversarialHeteFedRec(
            tiny_dataset.num_items, tiny_clients, self._config(), attack=attack
        )
        defended = AdversarialHeteFedRec(
            tiny_dataset.num_items,
            tiny_clients,
            self._config(),
            attack=attack,
            defense=RobustAggregationConfig(kind="clip", clip_headroom=2.0),
        )
        undefended.fit()
        defended.fit()
        reference = clean.models["l"].item_embedding.weight.data

        def distance(trainer):
            return float(
                np.linalg.norm(
                    trainer.models["l"].item_embedding.weight.data - reference
                )
            )

        assert distance(defended) < distance(undefended)

    def test_defense_with_secure_aggregation_rejected(self, tiny_dataset, tiny_clients):
        from repro.federated.secure_agg import SecureAggregationConfig

        with pytest.raises(ValueError):
            AdversarialHeteFedRec(
                tiny_dataset.num_items,
                tiny_clients,
                self._config(secure_aggregation=SecureAggregationConfig()),
                attack=AttackConfig(),
                defense=RobustAggregationConfig(kind="median"),
            )

    def test_honest_clients_listed(self, tiny_dataset, tiny_clients):
        trainer = AdversarialHeteFedRec(
            tiny_dataset.num_items,
            tiny_clients,
            self._config(),
            attack=AttackConfig(fraction=0.25, seed=2),
        )
        honest = set(trainer.honest_clients())
        assert honest.isdisjoint(trainer.malicious)
        assert len(honest) + len(trainer.malicious) == len(tiny_clients)


class TestAttackMetrics:
    def test_exposure_counts_topk_presence(self, handmade_dataset):
        from repro.data.splitting import train_test_split_per_user

        clients = train_test_split_per_user(handmade_dataset, seed=0)

        def always_item_3_first(client):
            scores = np.zeros(handmade_dataset.num_items)
            scores[3] = 10.0
            return scores

        rate = exposure_at_k(always_item_3_first, clients, target_item=3, k=1)
        # Users who already know item 3 are excluded; everyone else exposed.
        assert 0.0 < rate <= 1.0

    def test_exposure_zero_when_item_never_ranked(self, handmade_dataset):
        from repro.data.splitting import train_test_split_per_user

        clients = train_test_split_per_user(handmade_dataset, seed=0)

        def item_3_last(client):
            scores = np.ones(handmade_dataset.num_items)
            scores[3] = -10.0
            return scores

        assert exposure_at_k(item_3_last, clients, target_item=3, k=1) == 0.0

    def test_prediction_shift(self, handmade_dataset):
        from repro.data.splitting import train_test_split_per_user

        clients = train_test_split_per_user(handmade_dataset, seed=0)
        clean = lambda client: np.zeros(handmade_dataset.num_items)
        attacked = lambda client: np.full(handmade_dataset.num_items, 2.0)
        assert prediction_shift(clean, attacked, clients, target_item=0) == 2.0

    def test_prediction_shift_empty_clients(self):
        assert prediction_shift(lambda c: None, lambda c: None, [], 0) == 0.0


class TestAttackRngCheckpoint:
    """The poison stream must survive checkpoint/resume bitwise (PR 10).

    ``AdversarialHeteFedRec`` owns ``_attack_rng``; before PR 10 it was
    not registered in ``_checkpoint_rngs``, so a resumed attack run
    replayed fresh noise and silently diverged from the uninterrupted
    one — exactly the defect class the ``rng-registration`` lint rule
    now catches at diff time.
    """

    def _attack(self):
        # "noise" draws from the rng every poisoned upload, so stream
        # position is observable in the aggregated tables.
        return AttackConfig(kind="noise", fraction=0.3, scale=2.0, seed=1)

    def _config(self, epochs):
        return HeteFedRecConfig(
            epochs=epochs, clients_per_round=16, local_epochs=1, seed=3
        )

    def _build(self, dataset, clients, epochs):
        return AdversarialHeteFedRec(
            dataset.num_items, clients, self._config(epochs),
            attack=self._attack(),
        )

    def test_attack_stream_is_registered(self, tiny_dataset, tiny_clients):
        trainer = self._build(tiny_dataset, tiny_clients, epochs=1)
        rngs = trainer._checkpoint_rngs()
        assert rngs["attack"] is trainer._attack_rng

    def test_bitwise_resume_under_attack(self, tiny_dataset, tiny_clients, tmp_path):
        from repro.federated.checkpoint import (
            load_checkpoint_impl,
            save_checkpoint_impl,
        )

        full = self._build(tiny_dataset, tiny_clients, epochs=2)
        full.fit()

        first = self._build(tiny_dataset, tiny_clients, epochs=1)
        first.fit()
        path = str(tmp_path / "attack_ckpt.npz")
        save_checkpoint_impl(first, path)

        resumed = self._build(tiny_dataset, tiny_clients, epochs=2)
        load_checkpoint_impl(resumed, path)
        assert resumed.epochs_completed == 1
        resumed.fit()

        for group in full.groups:
            state_a = full.models[group].state_dict()
            state_b = resumed.models[group].state_dict()
            for key in state_a:
                assert np.array_equal(state_a[key], state_b[key]), (group, key)
