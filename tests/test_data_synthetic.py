"""Tests for the synthetic dataset generators.

These verify the calibration targets the reproduction depends on: the
heavy tail, the Table I shape statistics, determinism, and the two
activity-linked mechanisms (complexity and noise).
"""

import numpy as np
import pytest

from repro.data.stats import dataset_statistics, tail_heaviness
from repro.data.synthetic import (
    DATASET_SPECS,
    DatasetSpec,
    SyntheticConfig,
    generate_dataset,
    load_benchmark_dataset,
)

FAST = SyntheticConfig(scale=0.02, item_scale=0.06, seed=0)


class TestSpecs:
    def test_all_three_paper_datasets_present(self):
        assert set(DATASET_SPECS) == {"ml", "anime", "douban"}

    def test_spec_values_match_table1(self):
        ml = DATASET_SPECS["ml"]
        assert (ml.paper_users, ml.paper_items) == (6040, 3706)
        assert ml.paper_interactions == 1_000_209
        assert (ml.paper_avg, ml.paper_q50, ml.paper_q80) == (165.0, 77.0, 203.0)

    def test_quantile_ratios(self):
        ml = DATASET_SPECS["ml"]
        assert ml.q50_ratio == pytest.approx(77 / 165)
        assert ml.q80_ratio == pytest.approx(203 / 165)


class TestGeneration:
    def test_deterministic_across_calls(self):
        a = load_benchmark_dataset("ml", FAST)
        b = load_benchmark_dataset("ml", FAST)
        for items_a, items_b in zip(a.user_items, b.user_items):
            assert np.array_equal(items_a, items_b)

    def test_different_seeds_differ(self):
        a = load_benchmark_dataset("ml", FAST)
        b = load_benchmark_dataset(
            "ml", SyntheticConfig(scale=0.02, item_scale=0.06, seed=1)
        )
        assert a.to_pairs().shape != b.to_pairs().shape or not np.array_equal(
            a.to_pairs(), b.to_pairs()
        )

    def test_datasets_differ_from_each_other(self):
        ml = load_benchmark_dataset("ml", FAST)
        anime = load_benchmark_dataset("anime", FAST)
        assert ml.num_users != anime.num_users

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_benchmark_dataset("netflix")

    def test_scaling_controls_size(self):
        small = load_benchmark_dataset("ml", FAST)
        larger = load_benchmark_dataset(
            "ml", SyntheticConfig(scale=0.04, item_scale=0.12, seed=0)
        )
        assert larger.num_users > small.num_users
        assert larger.num_items > small.num_items

    def test_minimum_interactions_respected(self):
        data = load_benchmark_dataset("ml", FAST)
        assert data.interaction_counts().min() >= FAST.min_interactions

    def test_valid_item_ids(self):
        data = load_benchmark_dataset("douban", FAST)
        for items in data.user_items:
            assert items.size == np.unique(items).size
            if items.size:
                assert items.max() < data.num_items


class TestHeavyTail:
    @pytest.mark.parametrize("name", ["ml", "anime", "douban"])
    def test_majority_of_users_below_mean(self, name):
        data = load_benchmark_dataset(
            name, SyntheticConfig(scale=0.05, item_scale=0.1, seed=0)
        )
        assert tail_heaviness(data) > 0.5

    def test_cv_tracks_paper_dispersion(self):
        """MovieLens is the most dispersed dataset (paper intro), and each
        sample cv lands near its spec.  Exact three-way ordering is not
        asserted: douban has so few users at test scale that its sample cv
        is noisy."""
        cfg = SyntheticConfig(scale=0.05, item_scale=0.1, seed=0)
        cvs = {
            name: dataset_statistics(load_benchmark_dataset(name, cfg)).cv
            for name in ("ml", "anime", "douban")
        }
        assert cvs["ml"] == max(cvs.values())
        for name, cv in cvs.items():
            assert abs(cv - DATASET_SPECS[name].cv) < 0.35

    def test_quantile_shape_tracks_spec(self):
        data = load_benchmark_dataset(
            "ml", SyntheticConfig(scale=0.08, item_scale=0.15, seed=0)
        )
        stats = dataset_statistics(data)
        # The paper's <50% sits well below the mean: q50/avg ≈ 0.47.
        assert stats.q50 / stats.avg < 0.85


class TestActivityLinks:
    def test_noise_link_changes_light_users_most(self):
        """With noise off, light users' interactions align better with
        other users' (signal); the link specifically degrades them."""
        on = load_benchmark_dataset("ml", FAST)
        off = load_benchmark_dataset(
            "ml",
            SyntheticConfig(
                scale=0.02, item_scale=0.06, seed=0, noise_link=False,
                complexity_link=False,
            ),
        )
        # Same activity layout either way (counts drawn before the links).
        assert np.array_equal(on.interaction_counts(), off.interaction_counts())

    def test_links_can_be_disabled(self):
        cfg = SyntheticConfig(
            scale=0.02, item_scale=0.06, seed=0, noise_link=False, complexity_link=False
        )
        data = load_benchmark_dataset("ml", cfg)
        assert data.num_interactions > 0

    def test_popularity_concentration(self):
        """Interactions concentrate on few items (Zipf-ish catalogue)."""
        data = load_benchmark_dataset("ml", FAST)
        item_counts = np.zeros(data.num_items)
        for items in data.user_items:
            item_counts[items] += 1
        item_counts.sort()
        top_decile = item_counts[-max(data.num_items // 10, 1):].sum()
        assert top_decile / item_counts.sum() > 0.2
