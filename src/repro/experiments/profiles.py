"""Experiment profiles: how big and how long.

The pure-numpy substrate trades speed for auditability, so experiments
run at three sizes:

* ``smoke`` — seconds; used by the integration tests.  Orderings are not
  expected to be stable at this size.
* ``bench`` — the default for ``benchmarks/``; minutes per table; method
  orderings (the paper's *shape*) are stable.
* ``full``  — the largest practical size; closest to the paper's relative
  factors.  Used to produce the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.data.synthetic import SyntheticConfig


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale/duration bundle for one experiment run."""

    name: str
    scale: float
    item_scale: float
    epochs: int
    clients_per_round: int = 256
    local_epochs: int = 4
    lr: float = 0.01
    seed: int = 0

    def synthetic_config(self, seed_offset: int = 0) -> SyntheticConfig:
        return SyntheticConfig(
            scale=self.scale,
            item_scale=self.item_scale,
            seed=self.seed + seed_offset,
        )


PROFILES: Dict[str, ExperimentProfile] = {
    "smoke": ExperimentProfile(
        name="smoke", scale=0.015, item_scale=0.05, epochs=2
    ),
    "bench": ExperimentProfile(
        name="bench", scale=0.04, item_scale=0.15, epochs=20
    ),
    "full": ExperimentProfile(
        name="full", scale=0.08, item_scale=0.20, epochs=40
    ),
}


def get_profile(name: str) -> ExperimentProfile:
    if name not in PROFILES:
        raise KeyError(f"unknown profile {name!r}; choose from {sorted(PROFILES)}")
    return PROFILES[name]
