"""Synthetic analogues of the paper's three benchmark datasets.

The paper's motivation (Fig. 1, Table I) rests on one structural property:
per-user interaction counts are heavy-tailed — most users have far fewer
interactions than the mean, a few have many more.  The generators here
reproduce, per dataset, the *shape* of that distribution (mean, std/mean
ratio, and the <50% / <80% quantile positions from Table I) at a
configurable scale, and plant a learnable low-rank preference structure so
that recommendation quality differences between methods are meaningful.

Generative model
----------------
1. Draw user latent vectors ``p_u`` and item latent vectors ``q_i`` from a
   Gaussian with ``latent_dim`` factors; draw item popularity biases from a
   Zipf-like power law (real catalogues are popularity-skewed).
2. Draw per-user interaction counts from a lognormal fitted to the target
   mean and coefficient of variation, clipped to ``[min_interactions,
   max fraction of catalogue]``.
3. Link *preference complexity* to activity: a user at activity percentile
   ``p`` expresses only the first ``min_factors + p·(k - min_factors)``
   latent factors.  Casual users follow a few broad tastes; heavy users
   have multi-faceted preferences.  This is what makes a *small* model
   sufficient for data-poor clients and a *large* model necessary for
   data-rich ones — the premise of the paper's Fig. 6 / Table VII.
4. Link *interaction noise* to activity: a fraction of each user's
   interactions (``max_noise`` for the least active, falling linearly to
   ``min_noise`` for the most active) is drawn from the popularity prior
   instead of the user's own preference distribution — casual users
   browse charts.  Big embedding tables memorise this noise where small
   ones underfit it, producing the paper's All-Small > All-Large ordering
   and the harm data-poor clients inflict on a shared large model.
5. For each user, sample the signal portion with probability
   ``softmax(p_u · q_i / sqrt(k) * affinity_scale + popularity_i)`` and
   the noise portion from the popularity prior.

Steps 3–4 are the calibration that lets a scaled-down synthetic dataset
exhibit the paper's *mechanisms*, not just its marginal statistics; both
links can be disabled to get a plain homogeneous latent-factor dataset.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.data.dataset import InteractionDataset


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of one benchmark dataset (from paper Table I).

    ``avg``, ``q50`` and ``q80`` are stored as *fractions of avg* so the
    spec survives rescaling: e.g. MovieLens has avg=165, <50%=77, <80%=203,
    hence ``q50_ratio≈0.47``, ``q80_ratio≈1.23``; std 154.2 → ``cv≈0.93``.
    """

    name: str
    paper_users: int
    paper_items: int
    paper_interactions: int
    paper_avg: float
    paper_q50: float
    paper_q80: float
    cv: float  # coefficient of variation (std / mean) of interaction counts

    @property
    def q50_ratio(self) -> float:
        return self.paper_q50 / self.paper_avg

    @property
    def q80_ratio(self) -> float:
        return self.paper_q80 / self.paper_avg


#: Table I of the paper, plus the std values quoted in the introduction.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "ml": DatasetSpec(
        name="ml",
        paper_users=6040,
        paper_items=3706,
        paper_interactions=1_000_209,
        paper_avg=165.0,
        paper_q50=77.0,
        paper_q80=203.0,
        cv=154.2 / 132.8,
    ),
    "anime": DatasetSpec(
        name="anime",
        paper_users=10_482,
        paper_items=6888,
        paper_interactions=1_265_530,
        paper_avg=120.0,
        paper_q50=69.0,
        paper_q80=150.0,
        cv=79.8 / 96.1,
    ),
    "douban": DatasetSpec(
        name="douban",
        paper_users=1833,
        paper_items=7397,
        paper_interactions=330_268,
        paper_avg=180.0,
        paper_q50=115.0,
        paper_q80=244.0,
        cv=105.2 / 143.7,
    ),
}


@dataclass
class SyntheticConfig:
    """Controls the size and difficulty of a generated dataset.

    ``scale`` shrinks the paper's user/item universe (1.0 = paper scale;
    the default benchmark scale keeps runs laptop-fast on the pure-numpy
    substrate).  ``avg_interactions`` overrides the per-user mean count.
    """

    scale: float = 0.08
    # Items shrink less than users: the paper's catalogues are ~25× the
    # average interaction count (a client touches ~5% of items per round).
    # Shrinking items as fast as users would let every client cover the
    # whole catalogue each round, erasing the sparsity structure that
    # federated aggregation dynamics depend on.
    item_scale: float = 0.15
    avg_interactions: float = 32.0
    # Calibration (see DESIGN.md): the latent dimensionality must exceed
    # the small model width (8) so that All Small is capacity-limited,
    # while the *per-user expressed* complexity stays below each user's
    # interaction count so preferences remain statistically identifiable.
    latent_dim: int = 24
    affinity_scale: float = 4.0
    popularity_exponent: float = 1.0
    min_interactions: int = 6
    # Activity-linked preference complexity (generative step 3).
    complexity_link: bool = True
    min_factors: int = 4
    # Activity-linked interaction noise (generative step 4).
    noise_link: bool = True
    max_noise: float = 0.55
    min_noise: float = 0.10
    seed: int = 0


def _universe_sizes(spec: DatasetSpec, config: SyntheticConfig) -> tuple:
    """(num_users, num_items) the generator produces for ``spec``/``config``."""
    num_users = max(int(round(spec.paper_users * config.scale)), 20)
    num_items = max(int(round(spec.paper_items * config.item_scale)), 40)
    return num_users, num_items


def catalogue_size(name: str, config: Optional[SyntheticConfig] = None) -> int:
    """Catalogue size |V| of a benchmark dataset — without generating it.

    Analytic consumers (Table III's transmission-cost formulas) need only
    the item-universe size, which is a pure function of the spec and the
    scaling config; generating the interactions for it would be waste.
    """
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASET_SPECS)}")
    return _universe_sizes(DATASET_SPECS[key], config or SyntheticConfig())[1]


def _lognormal_counts(
    rng: np.random.Generator,
    num_users: int,
    mean: float,
    cv: float,
) -> np.ndarray:
    """Per-user counts from a lognormal matched to (mean, cv).

    For lognormal with parameters (mu, sigma): mean = exp(mu + sigma²/2)
    and cv² = exp(sigma²) - 1, so sigma² = log(1 + cv²).
    """
    sigma2 = np.log1p(cv**2)
    mu = np.log(mean) - sigma2 / 2.0
    return rng.lognormal(mu, np.sqrt(sigma2), size=num_users)


def generate_dataset(
    spec: DatasetSpec,
    config: Optional[SyntheticConfig] = None,
) -> InteractionDataset:
    """Generate a synthetic analogue of ``spec`` under ``config``."""
    config = config or SyntheticConfig()
    # zlib.crc32 is a *stable* name hash — python's hash() is salted per
    # process and would make datasets irreproducible across runs.
    name_code = zlib.crc32(spec.name.encode("utf-8")) % (2**16)
    rng = np.random.default_rng(config.seed + name_code)

    num_users, num_items = _universe_sizes(spec, config)

    # --- latent preference structure -------------------------------------
    k = config.latent_dim
    user_latent = rng.normal(0.0, 1.0, size=(num_users, k))
    item_latent = rng.normal(0.0, 1.0, size=(num_items, k))
    # Zipf-ish popularity bias: item ranked r gets log-popularity ∝ -a log r.
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    popularity = -config.popularity_exponent * np.log(ranks)
    popularity = rng.permutation(popularity)  # decouple popularity from id order

    # --- heavy-tailed per-user activity ----------------------------------
    counts = _lognormal_counts(rng, num_users, config.avg_interactions, spec.cv)
    cap = int(0.6 * num_items)
    counts = np.clip(np.round(counts), config.min_interactions, cap).astype(np.int64)

    # --- activity-linked complexity and noise (steps 3–4) -----------------
    activity_pct = np.argsort(np.argsort(counts)) / max(num_users - 1, 1)
    if config.complexity_link:
        factor_support = np.ceil(
            config.min_factors + (k - config.min_factors) * activity_pct
        ).astype(np.int64)
    else:
        factor_support = np.full(num_users, k, dtype=np.int64)
    if config.noise_link:
        noise_fraction = config.max_noise - (config.max_noise - config.min_noise) * activity_pct
    else:
        noise_fraction = np.zeros(num_users)

    popularity_probs = np.exp(popularity - popularity.max())
    popularity_probs /= popularity_probs.sum()

    # --- sample interactions ----------------------------------------------
    user_items = []
    scores_scale = config.affinity_scale / np.sqrt(k)
    for user in range(num_users):
        vec = user_latent[user].copy()
        support = int(factor_support[user])
        vec[support:] = 0.0
        # Renormalise so every user's preference signal has the same scale
        # regardless of how many factors it is spread over.
        vec *= np.sqrt(k / max(support, 1))

        logits = vec @ item_latent.T * scores_scale + popularity
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()

        num_noise = int(round(counts[user] * noise_fraction[user]))
        num_signal = int(counts[user]) - num_noise
        signal = rng.choice(num_items, size=num_signal, replace=False, p=probs)
        if num_noise:
            pool = np.setdiff1d(np.arange(num_items), signal)
            pool_probs = popularity_probs[pool] / popularity_probs[pool].sum()
            noise = rng.choice(
                pool, size=min(num_noise, pool.size), replace=False, p=pool_probs
            )
            chosen = np.concatenate([signal, noise])
        else:
            chosen = signal
        user_items.append(chosen)

    return InteractionDataset(num_users, num_items, user_items, name=spec.name)


def load_benchmark_dataset(
    name: str,
    config: Optional[SyntheticConfig] = None,
) -> InteractionDataset:
    """Load one of the three paper datasets by name ('ml', 'anime', 'douban').

    Currently always generates the synthetic analogue; a real MovieLens
    dump, when present, can be loaded via :func:`repro.data.movielens.load_movielens`
    and used anywhere an :class:`InteractionDataset` is expected.
    """
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASET_SPECS)}")
    return generate_dataset(DATASET_SPECS[key], config=config)
