"""Tests for the HeteFedRec trainer (Algorithm 1) and its ablation flags."""

import numpy as np
import pytest

from repro.core import HeteFedRec, HeteFedRecConfig
from repro.core.grouping import group_counts


def config(**overrides):
    base = dict(
        arch="ncf",
        dims={"s": 4, "m": 6, "l": 8},
        epochs=1,
        clients_per_round=32,
        local_epochs=1,
        lr=0.01,
        seed=0,
    )
    base.update(overrides)
    return HeteFedRecConfig(**base)


@pytest.fixture()
def trainer(tiny_dataset, tiny_clients):
    return HeteFedRec(tiny_dataset.num_items, tiny_clients, config())


class TestConstruction:
    def test_automatic_division(self, trainer, tiny_clients):
        counts = group_counts(trainer.group_of)
        assert sum(counts.values()) == len(tiny_clients)
        assert counts["s"] > counts["l"]

    def test_explicit_division_respected(self, tiny_dataset, tiny_clients):
        group_of = {c.user_id: "m" for c in tiny_clients}
        trainer = HeteFedRec(
            tiny_dataset.num_items, tiny_clients, config(), group_of=group_of
        )
        assert trainer.groups == ["m"]


class TestUDLWiring:
    def test_head_groups_with_udl(self, trainer):
        assert trainer.trained_head_groups("s") == ["s"]
        assert trainer.trained_head_groups("m") == ["s", "m"]
        assert trainer.trained_head_groups("l") == ["s", "m", "l"]

    def test_head_groups_without_udl(self, tiny_dataset, tiny_clients):
        trainer = HeteFedRec(
            tiny_dataset.num_items, tiny_clients, config(enable_udl=False)
        )
        assert trainer.trained_head_groups("l") == ["l"]

    def test_large_client_uploads_all_heads(self, trainer):
        large_users = [u for u, g in trainer.group_of.items() if g == "l"]
        update = trainer.train_client(trainer.runtimes[large_users[0]])
        assert set(update.head_deltas) == {"s", "m", "l"}

    def test_small_client_uploads_one_head(self, trainer):
        small_users = [u for u, g in trainer.group_of.items() if g == "s"]
        update = trainer.train_client(trainer.runtimes[small_users[0]])
        assert set(update.head_deltas) == {"s"}


class TestDDRWiring:
    def test_ddr_changes_large_client_loss(self, tiny_dataset, tiny_clients):
        with_ddr = HeteFedRec(tiny_dataset.num_items, tiny_clients, config(alpha=5.0))
        without = HeteFedRec(
            tiny_dataset.num_items, tiny_clients, config(enable_ddr=False)
        )
        user = next(u for u, g in with_ddr.group_of.items() if g == "l")

        def loss_of(trainer):
            runtime = trainer.runtimes[user]
            batch = runtime.sample_batch(1)
            return float(
                trainer.client_loss(runtime, runtime.user_parameter(), batch).data
            )

        assert loss_of(with_ddr) > loss_of(without)

    def test_ddr_not_applied_to_small_clients(self, trainer):
        """Paper Eq. 14 adds the penalty to L_m and L_l only."""
        user = next(u for u, g in trainer.group_of.items() if g == "s")
        runtime = trainer.runtimes[user]
        batch = runtime.sample_batch(1)
        base_cfg = config(enable_ddr=False)
        base = HeteFedRec(trainer.num_items, trainer.clients, base_cfg)
        loss_with = float(
            trainer.client_loss(runtime, runtime.user_parameter(), batch).data
        )
        base_runtime = base.runtimes[user]
        base_batch = base_runtime.sample_batch(1)
        loss_without = float(
            base.client_loss(base_runtime, base_runtime.user_parameter(), base_batch).data
        )
        assert loss_with == pytest.approx(loss_without)

    def test_collapse_diagnostics_keys(self, trainer):
        diag = trainer.collapse_diagnostics()
        assert set(diag) == {"s", "m", "l"}
        assert all(np.isfinite(v) for v in diag.values())


class TestRESKDWiring:
    def test_reskd_moves_tables_after_aggregation(self, tiny_dataset, tiny_clients):
        trainer = HeteFedRec(
            tiny_dataset.num_items,
            tiny_clients,
            config(enable_udl=False, enable_ddr=False),
        )
        before = trainer.models["l"].item_embedding.weight.data.copy()
        trainer.post_aggregate(1)
        after = trainer.models["l"].item_embedding.weight.data
        assert not np.allclose(before, after)

    def test_disabled_reskd_is_noop(self, tiny_dataset, tiny_clients):
        trainer = HeteFedRec(
            tiny_dataset.num_items, tiny_clients, config(enable_reskd=False)
        )
        before = trainer.models["l"].item_embedding.weight.data.copy()
        trainer.post_aggregate(1)
        assert np.array_equal(
            before, trainer.models["l"].item_embedding.weight.data
        )

    def test_nesting_holds_without_reskd_only(self, tiny_dataset, tiny_clients):
        """Padding aggregation preserves Eq. 10; RESKD (which updates each
        table independently) intentionally relaxes it."""
        no_kd = HeteFedRec(
            tiny_dataset.num_items, tiny_clients, config(enable_reskd=False)
        )
        no_kd.run_epoch(1)
        vs = no_kd.models["s"].item_embedding.weight.data
        vl = no_kd.models["l"].item_embedding.weight.data
        assert np.allclose(vs, vl[:, :4], atol=1e-12)

        with_kd = HeteFedRec(tiny_dataset.num_items, tiny_clients, config())
        with_kd.run_epoch(1)
        vs = with_kd.models["s"].item_embedding.weight.data
        vl = with_kd.models["l"].item_embedding.weight.data
        assert not np.allclose(vs, vl[:, :4], atol=1e-12)


class TestAblationEquivalence:
    def test_all_off_equals_directly_aggregate(self, tiny_dataset, tiny_clients):
        """Removing UDL+DDR+RESKD must reproduce Directly Aggregate exactly
        (same seeds → same trained parameters)."""
        from repro.baselines.direct import DirectAggregateTrainer

        stripped = HeteFedRec(
            tiny_dataset.num_items,
            tiny_clients,
            config(enable_udl=False, enable_ddr=False, enable_reskd=False),
        )
        direct = DirectAggregateTrainer(
            tiny_dataset.num_items, tiny_clients, config()
        )
        stripped.run_epoch(1)
        direct.run_epoch(1)
        for group in ("s", "m", "l"):
            assert np.allclose(
                stripped.models[group].item_embedding.weight.data,
                direct.models[group].item_embedding.weight.data,
            )

    def test_ablation_names(self):
        assert config().ablation_name() == "HeteFedRec"
        assert config(enable_reskd=False).ablation_name() == "HeteFedRec - RESKD"
        assert (
            config(enable_reskd=False, enable_ddr=False, enable_udl=False).ablation_name()
            == "HeteFedRec - RESKD,DDR,UDL"
        )


class TestEndToEnd:
    def test_one_epoch_trains_and_scores(self, trainer, tiny_clients):
        loss = trainer.run_epoch(1)
        assert loss > 0
        scores = trainer.score_all_items(tiny_clients[0])
        assert scores.shape == (trainer.num_items,)

    def test_lightgcn_variant(self, tiny_dataset, tiny_clients):
        trainer = HeteFedRec(
            tiny_dataset.num_items, tiny_clients, config(arch="lightgcn")
        )
        loss = trainer.run_epoch(1)
        assert np.isfinite(loss)
