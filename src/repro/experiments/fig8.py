"""Fig. 8 — sensitivity to the decorrelation weight α (RQ6).

Sweeps α and reports NDCG@20; the paper observes an interior optimum
(performance rises to a peak, then declines as the regulariser starts to
dominate the recommendation loss).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.profiles import ExperimentProfile
from repro.experiments.reporting import format_series
from repro.experiments.runner import RunResult, RunSpec, run_grid

#: The sweep includes the paper's grid (0.5–2.0) plus the small-scale
#: operating region; the interior-peak *shape* is the reproduction target.
DEFAULT_ALPHAS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0)


def _alpha_spec(dataset: str, arch: str, profile, seed: int, alpha: float) -> RunSpec:
    return RunSpec(
        dataset,
        "hetefedrec",
        arch=arch,
        profile=profile,
        seed=seed,
        config_overrides={"alpha": float(alpha)},
    )


def fig8_specs(
    profile: str | ExperimentProfile = "bench",
    dataset: str = "ml",
    archs: Sequence[str] = ("ncf", "lightgcn"),
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    seed: int = 0,
) -> List[RunSpec]:
    """The α sweep as run specs."""
    return [
        _alpha_spec(dataset, arch, profile, seed, alpha)
        for arch in archs
        for alpha in sorted(alphas)
    ]


def run_fig8(
    profile: str | ExperimentProfile = "bench",
    dataset: str = "ml",
    archs: Sequence[str] = ("ncf", "lightgcn"),
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List[Tuple[float, RunResult]]]:
    """``results[arch] = [(alpha, run), ...]`` sorted by alpha."""
    grid = run_grid(fig8_specs(profile, dataset, archs, alphas, seed), jobs=jobs)
    return {
        arch: [
            (float(alpha), grid[_alpha_spec(dataset, arch, profile, seed, alpha)])
            for alpha in sorted(alphas)
        ]
        for arch in archs
    }


def format_fig8(results: Dict[str, List[Tuple[float, RunResult]]]) -> str:
    blocks: List[str] = []
    for arch, series in results.items():
        blocks.append(
            format_series(
                [(alpha, run.ndcg) for alpha, run in series],
                label=f"Fig. 8 ({arch} on ml): α → NDCG@20",
            )
        )
    return "\n\n".join(blocks)


def has_interior_peak(series: List[Tuple[float, RunResult]]) -> bool:
    """True if the best α is strictly inside the sweep range."""
    if len(series) < 3:
        return False
    values = [run.ndcg for _, run in series]
    best = max(range(len(values)), key=values.__getitem__)
    return 0 < best < len(values) - 1


if __name__ == "__main__":
    print(format_fig8(run_fig8()))
