"""Successive-halving search over division ratios and model sizes.

:mod:`repro.core.autodivision` searches each knob with fixed-length pilot
runs.  This module searches the *joint* space (ratio × size grid) under a
fixed epoch budget with successive halving (Jamieson & Talwalkar, 2016):
every candidate trains a few epochs, the weaker half is dropped, the
survivors train on — so the budget concentrates on promising settings.
Trainers are stateful across rungs (training *continues*, it does not
restart), which is what makes halving cheaper than the grid.

Scoring uses validation NDCG only (:func:`repro.core.autodivision.
validation_ndcg`); the test set is never touched during search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.autodivision import (
    DEFAULT_RATIO_CANDIDATES,
    DEFAULT_SIZE_CANDIDATES,
    validation_ndcg,
)
from repro.core.config import HeteFedRecConfig
from repro.core.hetefedrec import HeteFedRec
from repro.data.dataset import ClientData


@dataclass(frozen=True)
class Candidate:
    """One point of the joint search space."""

    ratios: Tuple[float, float, float]
    dims: Tuple[Tuple[str, int], ...]

    @classmethod
    def make(cls, ratios: Sequence[float], dims: Dict[str, int]) -> "Candidate":
        return cls(ratios=tuple(ratios), dims=tuple(sorted(dims.items())))

    def dims_dict(self) -> Dict[str, int]:
        return dict(self.dims)

    def describe(self) -> str:
        dims = self.dims_dict()
        order = sorted(dims, key=dims.get)  # narrowest group first
        sizes = "/".join(str(dims[group]) for group in order)
        ratios = ":".join(f"{r:g}" for r in self.ratios)
        return f"ratios {ratios}, dims {sizes}"


def default_candidate_grid() -> List[Candidate]:
    """The paper's Table VI × Table VII cross product."""
    return [
        Candidate.make(ratios, dims)
        for ratios in DEFAULT_RATIO_CANDIDATES
        for dims in DEFAULT_SIZE_CANDIDATES
    ]


def halving_schedule(num_candidates: int, eta: int = 2) -> List[int]:
    """Survivor counts per rung: n, ⌈n/η⌉, … down to 1.

    E.g. 12 candidates at η=2 → [12, 6, 3, 2, 1].
    """
    if num_candidates < 1:
        raise ValueError(f"need at least one candidate, got {num_candidates}")
    if eta < 2:
        raise ValueError(f"eta must be ≥ 2, got {eta}")
    counts = [num_candidates]
    while counts[-1] > 1:
        counts.append(max(int(np.ceil(counts[-1] / eta)), 1))
    return counts


@dataclass
class RungRecord:
    """What happened at one rung of the halving."""

    rung: int
    epochs_each: int
    scores: List[Tuple[Candidate, float]] = field(default_factory=list)

    def survivors(self, keep: int) -> List[Candidate]:
        ordered = sorted(self.scores, key=lambda pair: pair[1], reverse=True)
        return [candidate for candidate, _ in ordered[:keep]]


@dataclass
class HalvingResult:
    """Winner plus the full rung-by-rung audit trail."""

    best: Candidate
    rungs: List[RungRecord]
    total_epochs_trained: int

    def best_config(self, config: HeteFedRecConfig) -> HeteFedRecConfig:
        """The input config with the winning ratios/dims substituted."""
        return config.copy_with(
            ratios=self.best.ratios, dims=self.best.dims_dict()
        )


def successive_halving(
    num_items: int,
    clients: Sequence[ClientData],
    config: HeteFedRecConfig,
    candidates: Optional[Sequence[Candidate]] = None,
    epochs_per_rung: int = 1,
    eta: int = 2,
    k: int = 20,
) -> HalvingResult:
    """Joint ratio/size search under successive halving.

    Every surviving candidate trains ``epochs_per_rung`` more epochs per
    rung; after scoring, the top ``1/eta`` fraction survives.  The
    returned audit trail records every (candidate, score) pair per rung.
    """
    pool = list(candidates) if candidates is not None else default_candidate_grid()
    if not pool:
        raise ValueError("candidate pool is empty")
    if epochs_per_rung < 1:
        raise ValueError(f"epochs_per_rung must be ≥ 1, got {epochs_per_rung}")

    trainers: Dict[Candidate, HeteFedRec] = {}
    for candidate in pool:
        run_config = config.copy_with(
            ratios=candidate.ratios, dims=candidate.dims_dict()
        )
        trainers[candidate] = HeteFedRec(num_items, clients, run_config)

    schedule = halving_schedule(len(pool), eta=eta)
    alive = list(pool)
    rungs: List[RungRecord] = []
    total_epochs = 0
    epoch_cursor = 0

    for rung_index, keep_next in enumerate(schedule[1:] + [1]):
        if len(alive) == 1 and rungs:
            break
        record = RungRecord(rung=rung_index, epochs_each=epochs_per_rung)
        for candidate in alive:
            trainer = trainers[candidate]
            for offset in range(epochs_per_rung):
                trainer.run_epoch(epoch_cursor + offset + 1)
            total_epochs += epochs_per_rung
            record.scores.append(
                (candidate, validation_ndcg(trainer, clients, k=k))
            )
        epoch_cursor += epochs_per_rung
        rungs.append(record)
        alive = record.survivors(keep_next)

    best = alive[0]
    return HalvingResult(best=best, rungs=rungs, total_epochs_trained=total_epochs)
