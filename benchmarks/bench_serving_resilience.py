"""Benchmark: the serving resilience layer at the edge.

Drives the admission / deadline / degradation / guarded-swap stack
through the three failure modes a production deployment actually hits,
and gates the behaviour the resilience design claims:

* ``graceful_drain`` — real client threads hammer the resilient service
  while a drain begins mid-traffic.  **Hard gate**: zero dropped
  in-flight requests — everything admitted before the drain is
  answered; everything after sheds with a clean :class:`ShedError`
  (never a hang, never a stray exception).
* ``overload_burst`` — the deterministic chaos harness fires
  2x-capacity bursts on the manual clock.  **Hard gates**: with
  shedding on, ≥ 99% of *admitted* requests meet their deadline and the
  queue depth stays bounded by capacity + wait room; with shedding off
  (unbounded wait room, no budgets) the same offered load is *shown* to
  collapse — queue depth tracks the burst size and tail latency blows
  through the deadline.
* ``swap_storm`` — hot-swap candidates arrive continuously with 30%
  truncated/corrupt, through the circuit-broken guarded swap.  **Hard
  gate**: the service never serves a corrupt/mismatched snapshot; the
  corrupt candidates end up quarantined as ``*.corrupt`` while pristine
  ones keep swapping in.

The two chaos arms run entirely on the manual clock, so their outcome
counters and answer digests are deterministic: ``--check BASELINE``
re-asserts bitwise-identical digests against the committed
``BENCH_serving_resilience.json`` (when the config shapes match), which
is what makes the fingerprint reproducibility claim CI-enforceable.

    PYTHONPATH=src python benchmarks/bench_serving_resilience.py
    PYTHONPATH=src python benchmarks/bench_serving_resilience.py \
        --quick --check BENCH_serving_resilience.json \
        --out bench_serving_resilience_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import replace
from typing import Dict

import numpy as np

FULL = dict(requests=600, drain_threads=16, drain_seconds=0.5)
QUICK = dict(requests=200, drain_threads=8, drain_seconds=0.2)

DEADLINE_MET_GATE = 0.99  # fraction of admitted requests, shedding on


def build_checkpoints(tmp_dir: str) -> Dict[str, str]:
    from repro.serving.chaos import build_chaos_checkpoints

    return build_chaos_checkpoints(tmp_dir)


# ----------------------------------------------------------------------
# Arm 1: graceful drain under real threads
# ----------------------------------------------------------------------
def bench_graceful_drain(paths: Dict[str, str], settings: Dict) -> Dict:
    from repro.serving import (
        RecommendationService,
        ResilienceConfig,
        ResilientService,
        ShedError,
    )

    service = RecommendationService(paths["v1"], k=10, cache_size=2048)
    resilient = ResilientService(
        service,
        ResilienceConfig(admission_capacity=64, max_waiting=128),
    )
    users = service.snapshot.user_ids()
    counts = {"answered": 0, "shed": 0, "unexpected": 0}
    lock = threading.Lock()
    stop = threading.Event()
    barrier = threading.Barrier(settings["drain_threads"] + 1)

    def worker(slot: int) -> None:
        rng = np.random.default_rng(slot)
        barrier.wait()
        while not stop.is_set():
            user = int(users[int(rng.integers(len(users)))])
            try:
                resilient.query(user)
                with lock:
                    counts["answered"] += 1
            except ShedError:
                with lock:
                    counts["shed"] += 1
                return  # drained: a real client would back off
            except BaseException:  # noqa: BLE001 - fails the gate
                with lock:
                    counts["unexpected"] += 1
                return

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(settings["drain_threads"])
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    time.sleep(settings["drain_seconds"])
    resilient.drain()  # mid-traffic: stop admitting, finish the rest
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    stats = resilient.admission.stats()
    # In-flight accounting: everything admitted either completed or is
    # still counted executing/waiting (it must be neither after join).
    dropped = stats["admitted"] - stats["completed"]
    return {
        "threads": settings["drain_threads"],
        "answered": counts["answered"],
        "shed_after_drain": stats["shed_draining"],
        "unexpected_errors": counts["unexpected"],
        "admitted": stats["admitted"],
        "completed": stats["completed"],
        "dropped_in_flight": dropped,
    }


# ----------------------------------------------------------------------
# Arms 2+3: deterministic chaos on the manual clock
# ----------------------------------------------------------------------
def _chaos_base(settings: Dict, **overrides):
    from repro.serving.chaos import ServingChaosConfig

    requests = settings["requests"]
    base = ServingChaosConfig(
        seed=0,
        requests=requests,
        fault_start=requests // 8,
        fault_end=(requests * 5) // 8,
        recovery_requests=max(20, requests // 8),
    )
    return replace(base, **overrides)


def bench_overload_burst(paths: Dict[str, str], settings: Dict, tmp: str) -> Dict:
    from repro.serving.chaos import run_chaos_scenario

    # Shedding ON: bounded wait room + deadline budgets.
    config_on = _chaos_base(
        settings,
        latency_spike_rate=0.0, error_rate=0.0, corrupt_swap_rate=0.0,
        swap_every=0, burst_every=25, burst_size=16,
        admission_capacity=8, max_waiting=4, deadline_ms=250.0,
    )
    on = run_chaos_scenario(config_on, checkpoints=paths, workdir=tmp)
    admitted_finished = on.answered + on.deadline_exceeded
    met = on.answered / max(1, admitted_finished)

    # Shedding OFF: same offered load, unbounded wait room, no budgets.
    config_off = replace(
        config_on, max_waiting=100_000, deadline_ms=None,
        burst_size=20 * config_on.admission_capacity,
    )
    off = run_chaos_scenario(config_off, checkpoints=paths, workdir=tmp)

    bound = config_on.admission_capacity + config_on.max_waiting
    return {
        "shedding_on": {
            "burst_size": config_on.burst_size,
            "capacity": config_on.admission_capacity,
            "max_waiting": config_on.max_waiting,
            "answered": on.answered,
            "shed": on.shed,
            "deadline_exceeded": on.deadline_exceeded,
            "deadline_met_fraction": met,
            "max_queue_depth": on.max_queue_depth,
            "p99_admitted_ms": on.p99_admitted_ms,
            "digest": on.answers_digest,
        },
        "shedding_off": {
            "burst_size": config_off.burst_size,
            "answered": off.answered,
            "shed": off.shed,
            "max_queue_depth": off.max_queue_depth,
            "p99_admitted_ms": off.p99_admitted_ms,
        },
        "depth_bound": bound,
    }


def bench_swap_storm(paths: Dict[str, str], settings: Dict, tmp: str) -> Dict:
    from repro.serving.chaos import run_chaos_scenario

    config = _chaos_base(
        settings,
        latency_spike_rate=0.0, error_rate=0.0,
        corrupt_swap_rate=0.3, swap_every=10,
        burst_every=0,
        fault_start=0, fault_end=settings["requests"],  # storm throughout
    )
    result = run_chaos_scenario(config, checkpoints=paths, workdir=tmp)
    return {
        "swap_attempts": result.swap_attempts,
        "corrupt_offered": result.corrupt_offered,
        "corrupt_rate": 0.3,
        "swaps_succeeded": result.swaps_succeeded,
        "quarantined": result.quarantined,
        "rollbacks": result.rollbacks,
        "bad_snapshots_served": result.bad_snapshots_served,
        "answered": result.answered,
        "digest": result.answers_digest,
    }


def run_benchmark(quick: bool = False) -> Dict:
    import tempfile

    settings = QUICK if quick else FULL
    with tempfile.TemporaryDirectory(prefix="bench-resilience-") as tmp_dir:
        paths = build_checkpoints(tmp_dir)
        drain = bench_graceful_drain(paths, settings)
        overload = bench_overload_burst(paths, settings, tmp_dir)
        storm = bench_swap_storm(paths, settings, tmp_dir)

    on = overload["shedding_on"]
    off = overload["shedding_off"]
    return {
        "benchmark": "serving_resilience",
        "config": {"quick": quick, **settings},
        "graceful_drain": drain,
        "overload_burst": overload,
        "swap_storm": storm,
        "gates": {
            "drain_zero_dropped_in_flight": (
                drain["dropped_in_flight"] == 0
                and drain["unexpected_errors"] == 0
            ),
            "deadline_met_floor": DEADLINE_MET_GATE,
            "overload_deadline_met_ok": (
                on["deadline_met_fraction"] >= DEADLINE_MET_GATE
            ),
            "overload_depth_bounded": (
                on["max_queue_depth"] <= overload["depth_bound"]
                and on["shed"] > 0
            ),
            "overload_collapse_demonstrated": (
                off["shed"] == 0
                and off["max_queue_depth"] >= 10 * on["max_queue_depth"]
                and off["p99_admitted_ms"] > 3 * on["p99_admitted_ms"]
            ),
            "storm_zero_bad_snapshots": storm["bad_snapshots_served"] == 0,
            "storm_exercised": (
                storm["corrupt_offered"] > 0
                and storm["quarantined"] > 0
                and storm["swaps_succeeded"] > 0
            ),
        },
    }


def enforce_gates(report: Dict) -> bool:
    """The benchmark's own hard gates — enforced on every run."""
    ok = True
    for name, value in report["gates"].items():
        if not isinstance(value, bool):
            continue
        print(f"[gate] {name}: {'ok' if value else 'FAILED'}")
        ok = ok and value
    return ok


def check_regression(report: Dict, baseline_path: str, tolerance: float) -> bool:
    """Determinism vs the committed baseline.

    The chaos arms run on the manual clock, so for a matching config the
    outcome digests must be *bitwise identical* — any drift means the
    seeded fault stream or the serving stack changed behaviour.
    ``tolerance`` is unused here (kept for CLI uniformity with the other
    bench harnesses).
    """
    del tolerance
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    if report["config"]["requests"] != baseline["config"]["requests"]:
        print(
            "[check] baseline ran at a different scale "
            f"(requests={baseline['config']['requests']}) — digest "
            "comparison skipped"
        )
        return True
    ok = True
    for arm, path in (
        ("overload_burst", ("overload_burst", "shedding_on", "digest")),
        ("swap_storm", ("swap_storm", "digest")),
    ):
        fresh, committed = report, baseline
        for key in path:
            fresh, committed = fresh[key], committed[key]
        verdict = "ok" if fresh == committed else "DIGEST DRIFT"
        if fresh != committed:
            ok = False
        print(f"[check] {arm} digest: {verdict}")
    return ok


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serving_resilience.json")
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI-sized run {QUICK} instead of {FULL}",
    )
    parser.add_argument(
        "--check", metavar="BASELINE_JSON",
        help="re-assert bitwise-identical chaos digests against this "
        "committed baseline (hard gates always enforced)",
    )
    parser.add_argument(
        "--check-tolerance", type=float, default=1.0,
        help="unused (digests are exact); kept for CLI uniformity",
    )
    args = parser.parse_args()

    report = run_benchmark(quick=args.quick)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)

    drain = report["graceful_drain"]
    print(
        f"graceful drain ({drain['threads']} threads): {drain['answered']} "
        f"answered, {drain['shed_after_drain']} shed post-drain, "
        f"{drain['dropped_in_flight']} dropped in-flight, "
        f"{drain['unexpected_errors']} unexpected errors"
    )
    on = report["overload_burst"]["shedding_on"]
    off = report["overload_burst"]["shedding_off"]
    print(
        f"overload (bursts of {on['burst_size']} vs capacity "
        f"{on['capacity']}+{on['max_waiting']}): shedding on -> "
        f"{on['deadline_met_fraction']:.3f} of admitted met deadline, "
        f"depth {on['max_queue_depth']}, p99 {on['p99_admitted_ms']:.0f}ms; "
        f"shedding off (bursts of {off['burst_size']}) -> depth "
        f"{off['max_queue_depth']}, p99 {off['p99_admitted_ms']:.0f}ms"
    )
    storm = report["swap_storm"]
    print(
        f"swap storm: {storm['corrupt_offered']}/{storm['swap_attempts']} "
        f"candidates corrupt -> {storm['quarantined']} quarantined, "
        f"{storm['swaps_succeeded']} swapped, {storm['rollbacks']} rolled "
        f"back, bad snapshots served: {storm['bad_snapshots_served']}"
    )
    print(f"wrote {args.out}")

    ok = enforce_gates(report)
    if args.check:
        ok = check_regression(report, args.check, args.check_tolerance) and ok
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
