"""Delayed duplicate uploads: retries racing their originals.

A fifth of delivered uploads are delivered *again* shortly after.  The
aggregation path must merge per-user duplicates (``merge_duplicate_users``)
rather than double-apply them; the ledger charges both deliveries'
bytes and counts the merges.
"""

from __future__ import annotations

from repro.sim.config import SimulationConfig


NAME = "duplicate_uploads"


def build(base: SimulationConfig):
    from repro.sim.scenarios import ScenarioSpec

    config = base.copy_with(
        latency=base.latency.__class__(kind="fixed", scale=0.1),
        duplicate_rate=0.2,
        duplicate_delay=0.25,
    )
    return ScenarioSpec(NAME, config)
