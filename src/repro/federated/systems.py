"""Wall-clock systems model: what heterogeneity buys in round time.

The paper motivates model heterogeneity with resource diversity
(footnote 5: computational power, energy, bandwidth) but evaluates in
epochs.  This module adds the missing systems lens: an analytic timing
model that converts per-client payloads and training work into round
wall-clock, so methods can be compared on *time-to-accuracy*.

Model (synchronous FL):

* a client's round time = download/bandwidth + train_work/compute +
  upload/bandwidth;
* a round completes when its slowest selected client finishes;
* per-client bandwidth and compute are drawn log-normally (the standard
  heavy-tailed device model) and fixed for the whole run.

The punchline the example/bench shows: under All Large every round
waits for a slow device moving the *largest* model; HeteFedRec's small
clients move small payloads, cutting the straggler tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np


#: Scalar size on the wire, bytes (float32).
BYTES_PER_SCALAR = 4


@dataclass
class SystemProfile:
    """Device population parameters.

    Bandwidths are in bytes/second, compute in training-examples/second;
    ``*_sigma`` are the log-normal shape parameters (0 = homogeneous
    fleet).  Defaults sketch a mid-range mobile population: ~2 MB/s
    median uplink, ~2000 examples/s median on-device training.
    """

    median_bandwidth: float = 2e6
    bandwidth_sigma: float = 1.0
    median_compute: float = 2000.0
    compute_sigma: float = 0.75
    seed: int = 0

    def __post_init__(self) -> None:
        if self.median_bandwidth <= 0 or self.median_compute <= 0:
            raise ValueError("medians must be positive")
        if self.bandwidth_sigma < 0 or self.compute_sigma < 0:
            raise ValueError("sigmas must be non-negative")

    def sample_devices(self, user_ids: Sequence[int]) -> Dict[int, "Device"]:
        """One fixed (bandwidth, compute) pair per user, seeded per user."""
        devices = {}
        for user_id in user_ids:
            rng = np.random.default_rng((self.seed, int(user_id)))
            bandwidth = self.median_bandwidth * float(
                np.exp(rng.normal(0.0, self.bandwidth_sigma))
            )
            compute = self.median_compute * float(
                np.exp(rng.normal(0.0, self.compute_sigma))
            )
            devices[int(user_id)] = Device(bandwidth=bandwidth, compute=compute)
        return devices


@dataclass
class Device:
    """One client's fixed capabilities."""

    bandwidth: float
    compute: float


def client_round_time(
    device: Device,
    payload_scalars: float,
    train_examples: int,
    local_epochs: int = 1,
) -> float:
    """Seconds for one client's full round (down + train + up)."""
    transfer = 2.0 * payload_scalars * BYTES_PER_SCALAR / device.bandwidth
    train = train_examples * local_epochs / device.compute
    return transfer + train


def payload_for(
    method: str,
    group: str,
    num_items: int,
    dims: Mapping[str, int],
    hidden: Sequence[int] = (8, 8),
) -> float:
    """Scalars a client of ``group`` moves per direction under ``method``.

    ``method`` ∈ {'all_small', 'all_large', 'hetefedrec'} — the Table III
    menu (see :func:`repro.federated.communication.transmission_cost`).
    """
    from repro.federated.communication import transmission_cost

    return float(transmission_cost(method, group, num_items, dims, hidden))


def simulate_round_times(
    method: str,
    group_of: Mapping[int, str],
    train_sizes: Mapping[int, int],
    num_items: int,
    dims: Mapping[str, int],
    profile: SystemProfile,
    clients_per_round: int = 256,
    num_rounds: int = 50,
    local_epochs: int = 4,
    hidden: Sequence[int] = (8, 8),
) -> np.ndarray:
    """Wall-clock seconds of ``num_rounds`` synchronous rounds.

    Each round samples ``clients_per_round`` clients uniformly and
    completes at the slowest one.  Returns the per-round times, from
    which time-to-accuracy curves and tail statistics follow.
    """
    user_ids = sorted(group_of)
    devices = profile.sample_devices(user_ids)
    rng = np.random.default_rng(profile.seed + 1)
    payloads = {
        group: payload_for(method, group, num_items, dims, hidden)
        for group in set(group_of.values())
    }
    # Per-client round time is round-independent; precompute it once.
    per_client = {
        user_id: client_round_time(
            devices[user_id],
            payloads[group_of[user_id]],
            train_examples=int(train_sizes.get(user_id, 1)) * 5,  # 1:4 negatives
            local_epochs=local_epochs,
        )
        for user_id in user_ids
    }

    times = np.zeros(num_rounds, dtype=np.float64)
    take = min(clients_per_round, len(user_ids))
    for round_index in range(num_rounds):
        chosen = rng.choice(user_ids, size=take, replace=False)
        times[round_index] = max(per_client[int(user_id)] for user_id in chosen)
    return times


def time_to_accuracy(
    ndcg_curve: Sequence[Tuple[int, float]],
    round_times: np.ndarray,
    rounds_per_epoch: int = 1,
) -> List[Tuple[float, float]]:
    """Map an (epoch, NDCG) curve onto cumulative wall-clock seconds.

    ``round_times`` cycles if shorter than the needed horizon (the model
    is stationary, so re-sampling and cycling are equivalent).
    """
    if len(round_times) == 0:
        raise ValueError("round_times is empty")
    curve: List[Tuple[float, float]] = []
    for epoch, ndcg in ndcg_curve:
        rounds_needed = int(epoch) * rounds_per_epoch
        full_cycles, rest = divmod(rounds_needed, len(round_times))
        seconds = full_cycles * float(round_times.sum()) + float(
            round_times[:rest].sum()
        )
        curve.append((seconds, float(ndcg)))
    return curve


def round_time_summary(times: np.ndarray) -> Dict[str, float]:
    """Mean / median / p95 round seconds — the straggler-tail picture."""
    if times.size == 0:
        return {"mean": 0.0, "median": 0.0, "p95": 0.0}
    return {
        "mean": float(times.mean()),
        "median": float(np.median(times)),
        "p95": float(np.percentile(times, 95)),
    }
