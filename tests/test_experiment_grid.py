"""Tests for the parallel grid executor and the concurrency-safe cache.

Covers the PR-4 contracts: pre-dispatch dedup across overlapping
consumer grids, serial-vs-parallel bitwise result equality,
deterministic per-spec seeding under ``jobs > 1``, cache-hit
short-circuiting, and atomic/corruption-tolerant cache writes.
"""

import os
from dataclasses import asdict

import pytest

import repro.experiments.runner as runner
from repro.experiments.fig6 import fig6_specs
from repro.experiments.fig7 import fig7_specs
from repro.experiments.runner import (
    RunSpec,
    run_grid,
    run_method,
    run_spec,
)
from repro.experiments.table2 import table2_specs


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path / "cache"))
    yield


@pytest.fixture()
def train_counter(monkeypatch):
    """Count actual training runs (the expensive part) through any path."""
    calls = []
    original = runner._train_spec

    def counting(spec, *args, **kwargs):
        calls.append(spec.key())
        return original(spec, *args, **kwargs)

    monkeypatch.setattr(runner, "_train_spec", counting)
    return calls


def _cache_files():
    if not os.path.isdir(runner.CACHE_DIR):
        return []
    return sorted(n for n in os.listdir(runner.CACHE_DIR) if n.endswith(".json"))


class TestRunSpec:
    def test_identity_is_the_cache_key(self):
        a = RunSpec("ml", "all_small", profile="smoke")
        b = RunSpec("ml", "all_small", arch="ncf", profile="smoke", seed=0)
        assert a == b and hash(a) == hash(b)
        assert a != RunSpec("ml", "all_small", profile="smoke", seed=1)
        assert a != RunSpec("anime", "all_small", profile="smoke")

    def test_equal_but_distinct_override_objects_dedupe(self):
        a = RunSpec("ml", "hetefedrec", profile="smoke",
                    config_overrides={"alpha": 0.5})
        b = RunSpec("ml", "hetefedrec", profile="smoke",
                    config_overrides={"alpha": 0.5})
        assert a == b
        assert len({a, b}) == 1

    def test_no_overrides_equals_empty_overrides(self):
        assert RunSpec("ml", "all_small", profile="smoke") == RunSpec(
            "ml", "all_small", profile="smoke", config_overrides={}
        )

    def test_key_matches_run_method_cache(self):
        spec = RunSpec("ml", "all_small", profile="smoke")
        result = run_method("ml", "all_small", profile="smoke")
        assert runner._load_cached(spec.key()).ndcg == result.ndcg


class TestDedup:
    def test_overlapping_consumer_grids_train_once(self, train_counter):
        """Table II ∩ Fig. 6 ∩ Fig. 7: one training job, many consumers."""
        methods = ("all_small", "hetefedrec")
        specs = (
            table2_specs("smoke", datasets=("ml",), archs=("ncf",), methods=methods)
            + fig6_specs("smoke", datasets=("ml",), archs=("ncf",), methods=methods)
            + fig7_specs("smoke", dataset="ml", archs=("ncf",), methods=methods)
        )
        assert len(specs) == 6  # three consumers × two methods
        results = run_grid(specs)
        assert len(results) == 2  # ...but only two unique runs
        assert len(train_counter) == 2
        assert len(_cache_files()) == 2
        # Every consumer's spec fetches a result.
        for spec in specs:
            assert results[spec].method == spec.method

    def test_dedup_happens_before_dispatch_without_cache(self, train_counter):
        spec = RunSpec("ml", "all_small", profile="smoke")
        results = run_grid([spec, spec, spec], use_cache=False)
        assert len(train_counter) == 1
        assert _cache_files() == []  # use_cache=False never writes
        assert results[spec].recall >= 0.0


class TestParallelExecution:
    def test_parallel_results_bitwise_equal_serial(self, tmp_path, monkeypatch):
        specs = [
            RunSpec("ml", "all_small", profile="smoke"),
            RunSpec("ml", "hetefedrec", profile="smoke"),
            RunSpec("anime", "all_small", profile="smoke"),
        ]
        monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path / "serial"))
        serial = run_grid(specs, jobs=1)
        monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path / "parallel"))
        parallel = run_grid(specs, jobs=2)
        for spec in specs:
            assert asdict(serial[spec]) == asdict(parallel[spec])

    def test_deterministic_seeds_under_parallel_jobs(self, tmp_path, monkeypatch):
        """Per-spec seeding is independent of which worker runs the spec."""
        specs = [
            RunSpec("ml", "all_small", profile="smoke", seed=seed)
            for seed in (0, 1, 2)
        ]
        monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path / "par"))
        parallel = run_grid(specs, jobs=3)
        for spec in specs:
            assert asdict(parallel[spec]) == asdict(run_spec(spec, use_cache=False))
        # Seeds produce genuinely different runs (the grid is not collapsing).
        curves = {tuple(parallel[spec].ndcg_curve) for spec in specs}
        assert len(curves) == 3

    def test_parallel_misses_fill_the_cache(self):
        specs = [
            RunSpec("ml", "all_small", profile="smoke"),
            RunSpec("ml", "all_large", profile="smoke"),
        ]
        run_grid(specs, jobs=2)
        assert len(_cache_files()) == 2
        # A fresh serial pass is now pure cache hits.
        again = run_grid(specs, jobs=1)
        assert {s.key() for s in again} == {s.key() for s in specs}


class TestCacheShortCircuit:
    def test_hits_never_reach_training(self, train_counter):
        spec = RunSpec("ml", "all_small", profile="smoke")
        first = run_method("ml", "all_small", profile="smoke")
        assert len(train_counter) == 1
        results = run_grid([spec], jobs=4)  # all hits → no pool, no training
        assert len(train_counter) == 1
        assert asdict(results[spec]) == asdict(first)

    def test_mixed_hits_and_misses(self, train_counter):
        cached_spec = RunSpec("ml", "all_small", profile="smoke")
        run_method("ml", "all_small", profile="smoke")
        miss_spec = RunSpec("ml", "all_large", profile="smoke")
        results = run_grid([cached_spec, miss_spec])
        assert [k for k in train_counter] == [cached_spec.key(), miss_spec.key()]
        assert results[cached_spec].method == "all_small"
        assert results[miss_spec].method == "all_large"


class TestCacheSafety:
    def test_store_is_atomic_no_tmp_left_behind(self):
        run_method("ml", "all_small", profile="smoke")
        names = os.listdir(runner.CACHE_DIR)
        assert len([n for n in names if n.endswith(".json")]) == 1
        assert not [n for n in names if n.endswith(".tmp")]

    def test_corrupt_entry_recovers(self, train_counter):
        """A torn write must read as a miss and be healed by a re-run."""
        spec = RunSpec("ml", "all_small", profile="smoke")
        first = run_method("ml", "all_small", profile="smoke")
        path = runner._cache_path(spec.key())
        payload = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload[: len(payload) // 2])  # torn mid-entry
        assert runner._load_cached(spec.key()) is None

        healed = run_method("ml", "all_small", profile="smoke")
        assert len(train_counter) == 2  # first run + the healing re-train
        assert asdict(healed) == asdict(first)
        assert runner._load_cached(spec.key()) is not None

    def test_worker_rechecks_cache_before_training(self, monkeypatch):
        """A key published after the miss scan is served, not retrained."""
        spec = RunSpec("ml", "all_small", profile="smoke")
        result = runner._train_spec(spec)
        runner._store_cached(spec.key(), result)

        def explode(_):
            raise AssertionError("worker must re-check the cache first")

        monkeypatch.setattr(runner, "_train_spec", explode)
        worked = runner._grid_worker(spec, True, runner.CACHE_DIR)
        assert asdict(worked) == asdict(result)

    def test_worker_uses_the_cache_dir_it_is_handed(self, tmp_path):
        """Spawn-started workers do not inherit a monkeypatched global —
        the dispatched cache directory must arrive as an argument."""
        spec = RunSpec("ml", "all_small", profile="smoke")
        other = str(tmp_path / "elsewhere")
        runner._grid_worker(spec, True, other)
        assert runner.CACHE_DIR == other
        assert [n for n in os.listdir(other) if n.endswith(".json")]


class TestDatasetMemo:
    def test_same_dataset_generated_once_per_process(self, monkeypatch):
        runner._DATASET_MEMO.clear()
        generations = []
        original = runner.load_benchmark_dataset

        def counting(name, config):
            generations.append(name)
            return original(name, config)

        monkeypatch.setattr(runner, "load_benchmark_dataset", counting)
        run_grid(
            [
                RunSpec("ml", "all_small", profile="smoke"),
                RunSpec("ml", "all_large", profile="smoke"),
                RunSpec("ml", "all_small", profile="smoke", seed=1),
            ]
        )
        assert generations == ["ml"]
        runner._DATASET_MEMO.clear()

    def test_memoized_runs_match_fresh_generation(self, tmp_path, monkeypatch):
        spec = RunSpec("ml", "all_small", profile="smoke")
        runner._DATASET_MEMO.clear()
        warm_twice = [run_spec(spec, use_cache=False) for _ in range(2)]
        runner._DATASET_MEMO.clear()
        fresh = run_spec(spec, use_cache=False)
        assert asdict(warm_twice[0]) == asdict(warm_twice[1]) == asdict(fresh)
