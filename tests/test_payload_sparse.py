"""Sparse-vs-dense upload equivalence suite.

Every sparse update must behave exactly (to the operation's own
arithmetic, i.e. equality — untouched rows contribute exact zeros) like
its densified twin through every server-side consumer: padding
aggregation, privacy protection, secure aggregation and availability
merging; plus the payload-level contracts (wire cost, scaling, the
``dense()``/``__array__`` escape hatch).
"""

import numpy as np
import pytest

from repro.federated.aggregation import padded_embedding_aggregate
from repro.federated.availability import merge_duplicate_users
from repro.federated.payload import ClientUpdate, SparseRowDelta, as_dense_delta
from repro.federated.privacy import PrivacyConfig, protect_update
from repro.federated.secure_agg import (
    SecureAggregationConfig,
    secure_aggregate_updates,
)
from repro.robustness.attacks import AttackConfig, poison_update
from repro.robustness.defenses import (
    robust_embedding_aggregate,
    server_clip_updates,
)

NUM_ITEMS = 40
DIMS = {"s": 2, "m": 3, "l": 4}


def sparse_update(user_id, group, rng, touched=6, heads=True):
    """A random sparse upload for ``group`` plus its densified twin."""
    width = DIMS[group]
    rows = np.sort(rng.choice(NUM_ITEMS, size=touched, replace=False))
    values = rng.normal(size=(touched, width))
    delta = SparseRowDelta(NUM_ITEMS, rows, values)
    head_deltas = (
        {group: {"w": rng.normal(size=(width, 2)), "b": rng.normal(size=(2,))}}
        if heads
        else {}
    )
    make = lambda emb: ClientUpdate(
        user_id=user_id,
        group=group,
        embedding_delta=emb,
        head_deltas={g: {k: v.copy() for k, v in s.items()} for g, s in head_deltas.items()},
        num_examples=5,
    )
    return make(delta), make(delta.dense())


def paired_round(rng, n=6):
    """A mixed-group round in both encodings, same values."""
    groups = ["s", "m", "l"]
    sparse, dense = [], []
    for user in range(n):
        s, d = sparse_update(user, groups[user % 3], rng)
        sparse.append(s)
        dense.append(d)
    return sparse, dense


class TestSparseRowDelta:
    def test_dense_round_trip(self, rng):
        dense = np.zeros((10, 3))
        dense[[2, 5, 7]] = rng.normal(size=(3, 3))
        delta = SparseRowDelta.from_dense(dense)
        assert delta.rows.tolist() == [2, 5, 7]
        np.testing.assert_array_equal(delta.dense(), dense)
        np.testing.assert_array_equal(np.asarray(delta), dense)

    def test_from_dense_drops_zero_rows(self):
        dense = np.zeros((4, 2))
        dense[1] = [1.0, -1.0]
        assert SparseRowDelta.from_dense(dense).rows.tolist() == [1]

    def test_wire_size_and_upload_size(self):
        delta = SparseRowDelta(100, np.array([3, 9]), np.ones((2, 4)))
        assert delta.wire_size == 2 * (1 + 4)
        update = ClientUpdate(
            user_id=0,
            group="l",
            embedding_delta=delta,
            head_deltas={"l": {"w": np.ones((2, 3))}},
        )
        # True wire cost: touched rows × (id + values) + every head scalar
        # — not O(num_rows).
        assert update.upload_size == 2 * (1 + 4) + 6

    def test_scaled_preserves_sparse_form(self):
        delta = SparseRowDelta(10, np.array([1, 4]), np.full((2, 2), 2.0))
        update = ClientUpdate(user_id=0, group="s", embedding_delta=delta)
        half = update.scaled(0.5)
        assert isinstance(half.embedding_delta, SparseRowDelta)
        np.testing.assert_array_equal(half.embedding_delta.values, 1.0)
        np.testing.assert_array_equal(delta.values, 2.0)  # original untouched

    def test_add_merges_rows(self):
        a = SparseRowDelta(8, np.array([1, 3]), np.ones((2, 2)))
        b = SparseRowDelta(8, np.array([3, 6]), np.full((2, 2), 2.0))
        merged = a + b
        assert merged.rows.tolist() == [1, 3, 6]
        np.testing.assert_array_equal(merged.dense(), a.dense() + b.dense())

    def test_sum_builtin(self):
        deltas = [
            SparseRowDelta(5, np.array([i]), np.full((1, 2), float(i)))
            for i in range(1, 4)
        ]
        total = sum(deltas)
        np.testing.assert_array_equal(
            total.dense(), sum(d.dense() for d in deltas)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseRowDelta(5, np.array([3, 1]), np.ones((2, 2)))  # unsorted
        with pytest.raises(ValueError):
            SparseRowDelta(5, np.array([1, 1]), np.ones((2, 2)))  # duplicate
        with pytest.raises(ValueError):
            SparseRowDelta(5, np.array([0, 7]), np.ones((2, 2)))  # out of range
        with pytest.raises(ValueError):
            SparseRowDelta(5, np.array([0, 1]), np.ones(2))  # not 2D

    def test_as_dense_delta_passthrough(self):
        dense = np.ones((3, 2))
        assert as_dense_delta(dense) is dense

    def test_mixed_dtype_add_promotes(self):
        """float32 + float64 must not silently downcast the f64 operand."""
        a = SparseRowDelta(6, np.array([0]), np.ones((1, 2), dtype=np.float32))
        b = SparseRowDelta(6, np.array([1]), np.full((1, 2), 1e-200))
        for merged in (a + b, b + a):
            assert merged.values.dtype == np.float64
            # 1e-200 underflows float32 to zero; it must survive exactly.
            np.testing.assert_array_equal(merged.dense()[1], 1e-200)
        same = a + SparseRowDelta(6, np.array([0]), np.ones((1, 2), np.float32))
        assert same.values.dtype == np.float32

    def test_mixed_dtype_mul_promotes(self):
        a = SparseRowDelta(6, np.array([2]), np.ones((1, 3), dtype=np.float32))
        # Python scalars stay weak: float32 sweeps keep their precision...
        assert (a * 0.5).values.dtype == np.float32
        assert (0.5 * a).values.dtype == np.float32
        # ...but a typed float64 factor must win.
        scaled = a * np.float64(1e-200)
        assert scaled.values.dtype == np.float64
        np.testing.assert_array_equal(scaled.values, 1e-200)


class TestAggregationEquivalence:
    def test_padded_aggregate_sum(self, rng):
        sparse, dense = paired_round(rng)
        out_sparse = padded_embedding_aggregate(sparse, DIMS, mode="sum")
        out_dense = padded_embedding_aggregate(dense, DIMS, mode="sum")
        for group in DIMS:
            np.testing.assert_array_equal(out_sparse[group], out_dense[group])

    def test_padded_aggregate_mean(self, rng):
        sparse, dense = paired_round(rng)
        out_sparse = padded_embedding_aggregate(sparse, DIMS, mode="mean")
        out_dense = padded_embedding_aggregate(dense, DIMS, mode="mean")
        for group in DIMS:
            np.testing.assert_array_equal(out_sparse[group], out_dense[group])

    def test_mixed_encodings_aggregate_together(self, rng):
        sparse, dense = paired_round(rng)
        mixed = [s if i % 2 else d for i, (s, d) in enumerate(zip(sparse, dense))]
        out_mixed = padded_embedding_aggregate(mixed, DIMS, mode="sum")
        out_dense = padded_embedding_aggregate(dense, DIMS, mode="sum")
        for group in DIMS:
            np.testing.assert_array_equal(out_mixed[group], out_dense[group])


class TestPrivacyEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            PrivacyConfig(clip_norm=0.5),
            PrivacyConfig(clip_norm=0.5, noise_std=0.1),
            PrivacyConfig(pseudo_items=4),
            PrivacyConfig(clip_norm=0.5, noise_std=0.1, pseudo_items=4),
        ],
        ids=["clip", "clip+noise", "pseudo", "all"],
    )
    def test_protection_matches_dense(self, rng, config):
        sparse, dense = sparse_update(0, "l", rng)
        out_sparse = protect_update(sparse, config, np.random.default_rng(123))
        out_dense = protect_update(dense, config, np.random.default_rng(123))
        assert isinstance(out_sparse.embedding_delta, SparseRowDelta)
        np.testing.assert_array_equal(
            out_sparse.embedding_delta.dense(), out_dense.embedding_delta
        )
        for head_group in out_dense.head_deltas:
            for name, value in out_dense.head_deltas[head_group].items():
                np.testing.assert_array_equal(
                    out_sparse.head_deltas[head_group][name], value
                )

    def test_pseudo_rows_join_the_sparse_support(self, rng):
        sparse, _ = sparse_update(0, "m", rng, touched=5)
        config = PrivacyConfig(pseudo_items=7)
        out = protect_update(sparse, config, np.random.default_rng(9))
        assert out.embedding_delta.rows.size == 12
        # Wire cost grows with the obfuscated support, as it should.
        assert out.embedding_delta.wire_size > sparse.embedding_delta.wire_size


class TestSecureAggregationEquivalence:
    def test_masked_sum_matches_dense(self, rng):
        sparse, dense = paired_round(rng)
        config = SecureAggregationConfig(seed=3)
        emb_sparse, heads_sparse = secure_aggregate_updates(
            sparse, DIMS, config, round_id=1
        )
        emb_dense, heads_dense = secure_aggregate_updates(
            dense, DIMS, config, round_id=1
        )
        for group in DIMS:
            np.testing.assert_array_equal(emb_sparse[group], emb_dense[group])
        for head_group in heads_dense:
            for name in heads_dense[head_group]:
                np.testing.assert_array_equal(
                    heads_sparse[head_group][name], heads_dense[head_group][name]
                )


class TestAvailabilityEquivalence:
    def test_duplicate_merge_matches_dense(self, rng):
        sparse_a, dense_a = sparse_update(1, "m", rng, touched=5)
        sparse_b, dense_b = sparse_update(1, "m", rng, touched=8)
        merged_sparse = merge_duplicate_users([sparse_a, sparse_b])
        merged_dense = merge_duplicate_users([dense_a, dense_b])
        assert len(merged_sparse) == 1
        assert isinstance(merged_sparse[0].embedding_delta, SparseRowDelta)
        np.testing.assert_array_equal(
            merged_sparse[0].embedding_delta.dense(),
            merged_dense[0].embedding_delta,
        )
        assert merged_sparse[0].num_examples == merged_dense[0].num_examples

    def test_staleness_scaling_stays_sparse(self, rng):
        from repro.federated.availability import StragglerBuffer

        sparse, dense = sparse_update(2, "s", rng)
        buffer = StragglerBuffer(staleness_weight=0.5)
        buffer.add([sparse])
        (drained,) = buffer.drain()
        assert isinstance(drained.embedding_delta, SparseRowDelta)
        np.testing.assert_array_equal(
            drained.embedding_delta.dense(), dense.embedding_delta * 0.5
        )


class TestRobustnessPaths:
    def test_noise_attack_preserves_sparse_form(self, rng):
        sparse, _ = sparse_update(0, "l", rng)
        poisoned = poison_update(
            sparse, AttackConfig(kind="noise", fraction=1.0, scale=5.0), rng
        )
        delta = poisoned.embedding_delta
        assert isinstance(delta, SparseRowDelta)
        np.testing.assert_array_equal(delta.rows, sparse.embedding_delta.rows)
        assert not np.allclose(delta.values, sparse.embedding_delta.values)

    def test_signflip_preserves_sparse_form(self, rng):
        sparse, dense = sparse_update(0, "m", rng)
        config = AttackConfig(kind="signflip", fraction=1.0, scale=4.0)
        out_sparse = poison_update(sparse, config, rng)
        out_dense = poison_update(dense, config, rng)
        assert isinstance(out_sparse.embedding_delta, SparseRowDelta)
        np.testing.assert_array_equal(
            out_sparse.embedding_delta.dense(), out_dense.embedding_delta
        )

    def test_promote_attack_adds_target_row(self, rng):
        sparse, dense = sparse_update(0, "l", rng)
        target = int(
            np.setdiff1d(np.arange(NUM_ITEMS), sparse.embedding_delta.rows)[0]
        )
        config = AttackConfig(kind="promote", fraction=1.0, target_item=target)
        out_sparse = poison_update(sparse, config, rng)
        out_dense = poison_update(dense, config, rng)
        assert isinstance(out_sparse.embedding_delta, SparseRowDelta)
        assert target in out_sparse.embedding_delta.rows
        np.testing.assert_array_equal(
            out_sparse.embedding_delta.dense(), out_dense.embedding_delta
        )

    def test_server_clip_matches_dense(self, rng):
        sparse, dense = paired_round(rng)
        # Make one upload an outlier so clipping actually fires.
        sparse[0] = sparse[0].scaled(100.0)
        dense[0] = dense[0].scaled(100.0)
        out_sparse = server_clip_updates(sparse, headroom=2.0)
        out_dense = server_clip_updates(dense, headroom=2.0)
        for s, d in zip(out_sparse, out_dense):
            np.testing.assert_allclose(
                as_dense_delta(s.embedding_delta),
                as_dense_delta(d.embedding_delta),
                atol=1e-12,
            )

    def test_robust_aggregate_matches_dense(self, rng):
        sparse, dense = paired_round(rng)
        for kind in ("median", "trimmed_mean"):
            out_sparse = robust_embedding_aggregate(sparse, DIMS, kind=kind)
            out_dense = robust_embedding_aggregate(dense, DIMS, kind=kind)
            for group in DIMS:
                np.testing.assert_array_equal(out_sparse[group], out_dense[group])


class TestCompressionPath:
    def test_sparse_in_sparse_out_with_row_cost(self, rng):
        from repro.compression.client import ClientCompressor
        from repro.compression.codecs import CompressionConfig

        sparse, _ = sparse_update(0, "l", rng, heads=False)
        compressor = ClientCompressor(
            CompressionConfig(kind="topk", ratio=0.5, error_feedback=True)
        )
        out = compressor.apply(sparse)
        delta = out.embedding_delta
        assert isinstance(delta, SparseRowDelta)
        np.testing.assert_array_equal(delta.rows, sparse.embedding_delta.rows)
        kept = np.count_nonzero(delta.values)
        # top-k cost (2 per kept entry) plus one scalar per row id.
        assert out.upload_size == 2.0 * kept + delta.rows.size

    def test_error_feedback_debiases_sparse(self, rng):
        from repro.compression.client import ClientCompressor
        from repro.compression.codecs import CompressionConfig

        compressor = ClientCompressor(
            CompressionConfig(kind="topk", ratio=0.3, error_feedback=True)
        )
        rows = np.arange(4)
        true_total = np.zeros((10, 2))
        sent_total = np.zeros((10, 2))
        for _ in range(40):
            delta = SparseRowDelta(10, rows, rng.normal(size=(4, 2)))
            update = ClientUpdate(user_id=0, group="s", embedding_delta=delta)
            true_total += delta.dense()
            sent_total += compressor.apply(update).embedding_delta.dense()
        residual = compressor.residual_norm(0)
        np.testing.assert_allclose(
            sent_total, true_total, atol=residual + 1e-9
        )
        assert np.abs(sent_total - true_total).max() < np.abs(true_total).max()
