"""The sharded memmap user store: correctness, determinism, memory bound."""

import numpy as np
import pytest

from repro.sim.user_store import MemmapUserStore


class TestRoundTrip:
    def test_read_write_roundtrip(self, tmp_path):
        store = MemmapUserStore(str(tmp_path / "s"), num_users=100, dim=4,
                                shard_size=16, seed=0)
        ids = np.array([3, 17, 42, 99])
        values = np.arange(16, dtype=np.float32).reshape(4, 4)
        store.write(ids, values)
        assert np.array_equal(store.read(ids), values)

    def test_matches_dense_reference(self, tmp_path):
        """Scattered writes through shards == the same ops on one array."""
        rng = np.random.default_rng(0)
        store = MemmapUserStore(str(tmp_path / "s"), num_users=200, dim=3,
                                shard_size=32, max_open_shards=2, seed=5)
        dense = store.read(np.arange(200)).copy()
        for _ in range(20):
            ids = rng.choice(200, size=rng.integers(1, 40), replace=False)
            delta = rng.normal(size=(ids.size, 3)).astype(np.float32)
            store.write(ids, store.read(ids) + delta)
            dense[ids] += delta
        assert np.allclose(store.read(np.arange(200)), dense, atol=1e-6)

    def test_out_of_range_rejected(self, tmp_path):
        store = MemmapUserStore(str(tmp_path / "s"), num_users=10, dim=2)
        with pytest.raises(IndexError):
            store.read([10])
        with pytest.raises(ValueError):
            store.write([0], np.zeros((2, 2), dtype=np.float32))


class TestDeterminism:
    def test_initial_rows_deterministic_in_seed(self, tmp_path):
        a = MemmapUserStore(str(tmp_path / "a"), num_users=64, dim=4,
                            shard_size=16, seed=9)
        b = MemmapUserStore(str(tmp_path / "b"), num_users=64, dim=4,
                            shard_size=16, seed=9)
        ids = np.arange(64)
        assert np.array_equal(a.read(ids), b.read(ids))

    def test_touch_order_does_not_leak_into_content(self, tmp_path):
        """Shard content is a function of (seed, shard) alone — two runs
        touching shards in opposite orders read identical rows and hash
        to the same digest."""
        fwd = MemmapUserStore(str(tmp_path / "f"), num_users=100, dim=4,
                              shard_size=10, max_open_shards=2, seed=3)
        rev = MemmapUserStore(str(tmp_path / "r"), num_users=100, dim=4,
                              shard_size=10, max_open_shards=2, seed=3)
        for uid in range(0, 100, 7):
            fwd.read([uid])
        for uid in reversed(range(0, 100, 7)):
            rev.read([uid])
        assert fwd.digest() == rev.digest()

    def test_digest_reflects_writes(self, tmp_path):
        store = MemmapUserStore(str(tmp_path / "s"), num_users=20, dim=2,
                                shard_size=8, seed=0)
        before = store.digest()
        store.write([5], np.ones((1, 2), dtype=np.float32))
        assert store.digest() != before


class TestMemoryBound:
    def test_population_scale_resident_memory_is_pinned(self, tmp_path):
        """10⁵ users: resident user-state stays under the configured
        budget — a fixed number of shards — no matter how many rows the
        run touches, while a dense table would be 100× larger."""
        store = MemmapUserStore(
            str(tmp_path / "s"), num_users=100_000, dim=32,
            shard_size=1024, max_open_shards=4, seed=0,
        )
        budget = store.resident_budget_bytes
        assert budget * 20 < store.dense_equivalent_bytes  # a real saving
        rng = np.random.default_rng(1)
        for _ in range(30):
            ids = np.sort(rng.choice(100_000, size=256, replace=False))
            rows = store.read(ids)
            store.write(ids, rows + 1.0)
            assert store.resident_bytes <= budget
        assert store.peak_open_shards <= 4
        assert store.shards_created > 4  # the LRU really evicted shards
        stats = store.stats()
        assert stats["resident_bytes"] <= stats["resident_budget_bytes"]

    def test_eviction_persists_writes(self, tmp_path):
        """A write that was LRU-evicted out of the open set must survive
        (flushed to disk) and read back exactly."""
        store = MemmapUserStore(str(tmp_path / "s"), num_users=64, dim=2,
                                shard_size=8, max_open_shards=1, seed=0)
        marker = np.full((1, 2), 7.5, dtype=np.float32)
        store.write([3], marker)
        for uid in range(8, 64, 8):  # cycle through every other shard
            store.read([uid])
        assert np.array_equal(store.read([3]), marker)

    def test_lazy_shards_never_materialise_untouched(self, tmp_path):
        store = MemmapUserStore(str(tmp_path / "s"), num_users=10_000, dim=4,
                                shard_size=100, seed=0)
        store.read([0])
        store.read([9_999])
        assert store.created_shard_indices() == [0, 99]
        assert store.shards_created == 2
