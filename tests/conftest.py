"""Shared fixtures: small deterministic datasets and client splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import InteractionDataset
from repro.data.splitting import train_test_split_per_user
from repro.data.synthetic import SyntheticConfig, load_benchmark_dataset


@pytest.fixture(scope="session")
def tiny_dataset() -> InteractionDataset:
    """A fixed 60-user dataset small enough for per-test training."""
    return load_benchmark_dataset(
        "ml", SyntheticConfig(scale=0.01, item_scale=0.03, seed=7)
    )


@pytest.fixture(scope="session")
def tiny_clients(tiny_dataset):
    return train_test_split_per_user(tiny_dataset, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def handmade_dataset() -> InteractionDataset:
    """A hand-written dataset with known structure for exact assertions."""
    user_items = [
        np.array([0, 1, 2, 3, 4, 5, 6, 7]),   # heavy user
        np.array([0, 1, 2, 3, 4, 5]),
        np.array([0, 1, 2, 3]),
        np.array([4, 5, 6]),
        np.array([7, 8]),
        np.array([9]),                        # light user
    ]
    return InteractionDataset(6, 10, user_items, name="handmade")
