"""Benchmark: population-scale throughput of the event-driven simulator.

Pushes a full baseline scenario — dispatch, latency draws, buffered
aggregation, memmap-backed user state — through
:func:`repro.sim.scenarios.run_scenario` at :math:`10^5` clients and
reports client throughput plus peak resident memory:

* ``clients_per_second`` — simulated clients divided by wall-clock time
  of the scenario run (the number the memmap store and the vectorized
  surrogate fleet exist to keep high);
* ``peak_rss_mb``        — ``ru_maxrss`` after the run: the whole-process
  high-water mark, which the sharded user store keeps orders of
  magnitude below a dense per-user state table;
* ``deterministic``      — two same-seed small-scale runs must produce
  identical :meth:`ScenarioResult.fingerprint` payloads (hard gate).

Results go to ``BENCH_sim.json``:

    PYTHONPATH=src python benchmarks/bench_sim.py

``--quick`` shrinks the population for CI; ``--check BASELINE`` compares
throughput against a committed baseline and exits non-zero when it falls
below ``--check-tolerance`` × the baseline value or the RSS ceiling is
breached — determinism is always enforced:

    PYTHONPATH=src python benchmarks/bench_sim.py \
        --quick --check BENCH_sim.json --out bench_sim_fresh.json
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from typing import Dict

from repro.sim.config import SimulationConfig
from repro.sim.scenarios import run_scenario

FULL_CLIENTS = 100_000
QUICK_CLIENTS = 5_000


def scale_config(num_clients: int) -> SimulationConfig:
    return SimulationConfig(
        num_clients=num_clients, num_items=500, dim=8, items_per_client=16,
        clients_per_round=512, epochs=1, seed=0,
    )


def peak_rss_mb() -> float:
    """Process high-water resident set, in MiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_benchmark(quick: bool = False) -> Dict:
    # Determinism first, at small scale: same seed ⇒ identical fingerprint.
    small = SimulationConfig(
        num_clients=400, num_items=200, dim=8, items_per_client=8,
        clients_per_round=32, epochs=1, seed=0,
    )
    deterministic = (
        run_scenario("baseline", small).fingerprint()
        == run_scenario("baseline", small).fingerprint()
    )

    num_clients = QUICK_CLIENTS if quick else FULL_CLIENTS
    config = scale_config(num_clients)
    start = time.perf_counter()
    result = run_scenario("baseline", config)
    wall_seconds = time.perf_counter() - start

    return {
        "benchmark": "sim",
        "config": {
            "num_clients": num_clients,
            "num_items": config.num_items,
            "dim": config.dim,
            "items_per_client": config.items_per_client,
            "clients_per_round": config.clients_per_round,
            "quick": quick,
        },
        "clients_simulated": result.clients_simulated,
        "events_processed": result.events_processed,
        "rounds_applied": result.rounds_applied,
        "wall_seconds": wall_seconds,
        "clients_per_second": result.clients_simulated / wall_seconds,
        "peak_rss_mb": peak_rss_mb(),
        "deterministic": deterministic,
    }


def check_regression(report: Dict, baseline_path: str, tolerance: float) -> bool:
    """Gate a fresh report against a committed baseline.

    Determinism is a hard requirement.  Throughput must reach at least
    ``tolerance`` × the baseline's ``clients_per_second``, and peak RSS
    must stay under baseline ÷ ``tolerance`` — both only when the
    baseline ran at the same population scale (a --quick run is not
    comparable to the committed full-scale numbers).
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    ok = True
    if not report["deterministic"]:
        print("[check] deterministic: FAILED — same-seed fingerprints diverged")
        ok = False
    else:
        print("[check] deterministic: ok")
    if report["config"]["num_clients"] != baseline["config"]["num_clients"]:
        print(
            f"[check] scale mismatch ({report['config']['num_clients']:,} vs "
            f"baseline {baseline['config']['num_clients']:,}): "
            "throughput/RSS floors skipped"
        )
        return ok
    floor = tolerance * baseline["clients_per_second"]
    measured = report["clients_per_second"]
    verdict = "ok" if measured >= floor else "REGRESSION"
    if measured < floor:
        ok = False
    print(
        f"[check] clients_per_second: measured {measured:,.0f} vs baseline "
        f"{baseline['clients_per_second']:,.0f} (floor {floor:,.0f}) — {verdict}"
    )
    ceiling = baseline["peak_rss_mb"] / tolerance
    verdict = "ok" if report["peak_rss_mb"] <= ceiling else "REGRESSION"
    if report["peak_rss_mb"] > ceiling:
        ok = False
    print(
        f"[check] peak_rss_mb: measured {report['peak_rss_mb']:.1f} vs "
        f"baseline {baseline['peak_rss_mb']:.1f} (ceiling {ceiling:.1f}) "
        f"— {verdict}"
    )
    return ok


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_sim.json")
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI-sized population ({QUICK_CLIENTS:,} clients instead of "
        f"{FULL_CLIENTS:,})",
    )
    parser.add_argument(
        "--check", metavar="BASELINE_JSON",
        help="compare throughput/RSS/determinism against this committed "
        "baseline and exit non-zero on a regression",
    )
    parser.add_argument(
        "--check-tolerance", type=float, default=0.4,
        help="fraction of the baseline throughput the measured value must "
        "reach (and 1/fraction the RSS may grow to; default: 0.4)",
    )
    args = parser.parse_args()

    report = run_benchmark(quick=args.quick)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(
        f"simulated {report['clients_simulated']:,} clients "
        f"({report['events_processed']:,} events, "
        f"{report['rounds_applied']:,} rounds) in "
        f"{report['wall_seconds']:.2f}s — "
        f"{report['clients_per_second']:,.0f} clients/sec, peak RSS "
        f"{report['peak_rss_mb']:.1f} MiB; deterministic: "
        f"{report['deterministic']}; wrote {args.out}"
    )
    if args.check and not check_regression(report, args.check, args.check_tolerance):
        sys.exit(1)


if __name__ == "__main__":
    main()
