"""Contract-aware static analysis for the repro codebase.

``python -m repro lint [paths]`` runs AST-based checks that encode the
ROADMAP's standing contracts (determinism, sparse hot paths, atomic
cache writes, lock discipline, RNG checkpoint completeness, facade-only
examples).  See :mod:`repro.analysis.framework` for the rule registry,
suppression pragmas and baseline semantics, and
:mod:`repro.analysis.rules` for the built-in rules.
"""

from repro.analysis.framework import (
    Baseline,
    FileContext,
    Finding,
    Report,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    register,
    render_json,
    render_text,
    rule_catalogue,
)

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "Report",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
    "rule_catalogue",
]
