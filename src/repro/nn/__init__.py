"""Minimal neural-network library on top of :mod:`repro.autograd`.

Provides the modules, initialisers and optimisers used by the base
recommenders (NCF, LightGCN) and the HeteFedRec losses.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Embedding, Linear, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn import init
from repro.nn import functional

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Sequential",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Optimizer",
    "SGD",
    "Adam",
    "init",
    "functional",
]
