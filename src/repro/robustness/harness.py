"""Adversarial training harness: HeteFedRec with a malicious sub-population.

:class:`AdversarialHeteFedRec` is a drop-in HeteFedRec trainer where a
configured fraction of clients poisons its uploads and the server may
run a robust aggregation rule.  Both knobs are independent, giving the
four quadrants the robustness bench sweeps: clean/undefended,
clean/defended (the defence's utility cost), attacked/undefended (the
damage), attacked/defended (the recovery).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.config import HeteFedRecConfig
from repro.core.hetefedrec import HeteFedRec
from repro.data.dataset import ClientData
from repro.federated.client import ClientRuntime
from repro.federated.payload import ClientUpdate
from repro.robustness.attacks import AttackConfig, choose_malicious, poison_update
from repro.robustness.defenses import (
    RobustAggregationConfig,
    krum_select,
    robust_embedding_aggregate,
    server_clip_updates,
)


class AdversarialHeteFedRec(HeteFedRec):
    """HeteFedRec under attack, optionally behind a robust aggregator."""

    method_name = "hetefedrec_adversarial"

    def __init__(
        self,
        num_items: int,
        clients: Sequence[ClientData],
        config: HeteFedRecConfig,
        attack: Optional[AttackConfig] = None,
        defense: Optional[RobustAggregationConfig] = None,
        group_of: Optional[Mapping[int, str]] = None,
    ) -> None:
        if config.secure_aggregation is not None and defense is not None:
            raise ValueError(
                "robust aggregation needs plaintext uploads; it cannot run "
                "under secure aggregation (the server only sees sums there)"
            )
        self.attack = attack
        self.defense = defense
        super().__init__(num_items, clients, config, group_of=group_of)
        self.malicious = (
            choose_malicious(clients, attack.fraction, seed=attack.seed)
            if attack is not None
            else set()
        )
        self._attack_rng = np.random.default_rng(
            attack.seed + 101 if attack is not None else 0
        )

    def _checkpoint_rngs(self) -> Dict[str, np.random.Generator]:
        rngs = super()._checkpoint_rngs()
        # The poison stream advances once per malicious client per round;
        # without registration a resumed attack run replays fresh noise
        # and silently diverges from the uninterrupted one.
        rngs["attack"] = self._attack_rng
        return rngs

    # ------------------------------------------------------------------
    # Client side: the malicious population swaps its upload
    # ------------------------------------------------------------------
    def train_client(self, runtime: ClientRuntime) -> ClientUpdate:
        update = super().train_client(runtime)
        if self.attack is not None and runtime.user_id in self.malicious:
            update = poison_update(update, self.attack, self._attack_rng)
        return update

    # ------------------------------------------------------------------
    # Server side: defence before aggregation
    # ------------------------------------------------------------------
    def apply_updates(self, updates: Sequence[ClientUpdate]) -> None:
        if self.defense is not None and self.defense.kind == "clip":
            updates = server_clip_updates(updates, self.defense.clip_headroom)
        elif self.defense is not None and self.defense.kind == "krum":
            dims = {g: self.config.dims[g] for g in self.groups}
            updates = krum_select(updates, dims, self.defense.krum_keep)
        super().apply_updates(updates)

    def aggregate_embeddings(
        self, updates: Sequence[ClientUpdate]
    ) -> Dict[str, np.ndarray]:
        if self.defense is not None and self.defense.kind in ("median", "trimmed_mean"):
            dims = {g: self.config.dims[g] for g in self.groups}
            return robust_embedding_aggregate(
                updates, dims, kind=self.defense.kind,
                trim_fraction=self.defense.trim_fraction,
            )
        return super().aggregate_embeddings(updates)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def honest_clients(self) -> List[int]:
        return [c.user_id for c in self.clients if c.user_id not in self.malicious]

    def summary(self) -> Dict[str, object]:
        return {
            "attack": self.attack.kind if self.attack else "none",
            "malicious_clients": len(self.malicious),
            "defense": self.defense.kind if self.defense else "none",
        }
