"""Compression codecs over numpy arrays.

Communication is accounted in *scalar-equivalents*: one uncompressed
model parameter (32-bit float) costs 1.  A top-k entry costs 2 (value +
index); a b-bit quantised entry costs b/32; codec metadata (scales,
shapes) is charged explicitly.  This keeps compressed and dense payloads
comparable inside :class:`repro.federated.communication.CommunicationMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

_SCALAR_BITS = 32.0


@dataclass
class CompressionConfig:
    """Which codec uploads pass through, and its parameters.

    ``ratio`` is the kept fraction for the sparsifying codecs (ignored by
    ``quantize``); ``bits`` is the quantiser width (ignored by the
    sparsifiers).  ``error_feedback`` turns on per-client residual
    accumulation, which de-biases repeated lossy compression.
    """

    kind: str = "topk"
    ratio: float = 0.1
    bits: int = 8
    error_feedback: bool = True
    seed: int = 0

    _KINDS = ("topk", "randomk", "quantize", "none")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"kind must be one of {self._KINDS}, got {self.kind!r}")
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio}")
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")


@dataclass
class CompressedTensor:
    """A compressed array: its reconstruction plus its wire cost."""

    reconstruction: np.ndarray
    payload_scalars: float

    def dense(self) -> np.ndarray:
        return self.reconstruction


def topk_sparsify(values: np.ndarray, ratio: float) -> CompressedTensor:
    """Keep the ``ratio`` fraction of largest-|value| entries.

    At least one entry survives on non-empty input.  Wire cost: 2 scalars
    per kept entry (value + flat index).
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        return CompressedTensor(np.zeros_like(values, dtype=np.float64), 0.0)
    k = max(int(round(flat.size * ratio)), 1)
    keep = np.argpartition(np.abs(flat), flat.size - k)[-k:]
    sparse = np.zeros_like(flat)
    sparse[keep] = flat[keep]
    return CompressedTensor(sparse.reshape(values.shape), 2.0 * k)


def randomk_sparsify(
    values: np.ndarray, ratio: float, rng: np.random.Generator
) -> CompressedTensor:
    """Keep a uniform random ``ratio`` fraction, rescaled by 1/ratio.

    The rescaling makes the reconstruction an unbiased estimator of the
    input (E[output] = input), the property the convergence analyses of
    random sparsification rely on.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        return CompressedTensor(np.zeros_like(values, dtype=np.float64), 0.0)
    k = max(int(round(flat.size * ratio)), 1)
    keep = rng.choice(flat.size, size=k, replace=False)
    sparse = np.zeros_like(flat)
    sparse[keep] = flat[keep] / ratio
    return CompressedTensor(sparse.reshape(values.shape), 2.0 * k)


def quantize_uniform(values: np.ndarray, bits: int) -> CompressedTensor:
    """Uniform b-bit quantisation over the tensor's [min, max] range.

    Wire cost: b/32 scalars per entry plus 2 scalars of range metadata.
    A constant tensor round-trips exactly (zero range ⇒ zero error).
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return CompressedTensor(array.copy(), 0.0)
    low = float(array.min())
    high = float(array.max())
    payload = array.size * bits / _SCALAR_BITS + 2.0
    if high == low:
        return CompressedTensor(np.full_like(array, low), payload)
    levels = float(2**bits - 1)
    codes = np.rint((array - low) / (high - low) * levels)
    reconstruction = low + codes / levels * (high - low)
    return CompressedTensor(reconstruction, payload)


class Compressor:
    """Stateless codec dispatch; one instance is shared per trainer."""

    def __init__(self, config: CompressionConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    def compress(self, values: np.ndarray) -> CompressedTensor:
        kind = self.config.kind
        if kind == "topk":
            return topk_sparsify(values, self.config.ratio)
        if kind == "randomk":
            return randomk_sparsify(values, self.config.ratio, self._rng)
        if kind == "quantize":
            return quantize_uniform(values, self.config.bits)
        dense = np.asarray(values, dtype=np.float64)
        return CompressedTensor(dense.copy(), float(dense.size))

    def compression_error(self, values: np.ndarray) -> float:
        """Max absolute reconstruction error on one tensor (diagnostics)."""
        out = self.compress(values).dense()
        return float(np.max(np.abs(out - np.asarray(values, dtype=np.float64)))) if out.size else 0.0


def build_compressor(config: Optional[CompressionConfig]) -> Optional[Compressor]:
    """Factory mirroring the other subsystems' ``build_*`` helpers."""
    if config is None or config.kind == "none":
        return None
    return Compressor(config)
