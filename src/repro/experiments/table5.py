"""Table V — dimensional collapse: singular-value variance of cov(V_l).

Compares the largest item table's covariance-spectrum spread with and
without the decorrelation regulariser.  A higher value means the
spectrum is dominated by few directions — the collapse DDR exists to
prevent.  Reuses the Table IV runs (full vs −RESKD,DDR) via the cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.profiles import ExperimentProfile
from repro.experiments.reporting import format_table
from repro.experiments.runner import RunSpec, run_grid

#: Both arms disable RESKD so the comparison isolates DDR; these are the
#: same cache entries as Table IV's middle rungs.
ARMS = (
    ("+ DDR", {"enable_reskd": False}),
    ("- DDR", {"enable_reskd": False, "enable_ddr": False}),
)


def _arm_spec(dataset: str, arch: str, profile, seed: int, overrides: dict) -> RunSpec:
    return RunSpec(
        dataset,
        "hetefedrec",
        arch=arch,
        profile=profile,
        seed=seed,
        config_overrides=overrides,
    )


def table5_specs(
    profile: str | ExperimentProfile = "bench",
    datasets: Sequence[str] = ("ml", "anime", "douban"),
    archs: Sequence[str] = ("ncf", "lightgcn"),
    seed: int = 0,
) -> List[RunSpec]:
    """Both DDR arms as run specs (shared with Table IV via the cache key)."""
    return [
        _arm_spec(dataset, arch, profile, seed, overrides)
        for arch in archs
        for dataset in datasets
        for _, overrides in ARMS
    ]


def run_table5(
    profile: str | ExperimentProfile = "bench",
    datasets: Sequence[str] = ("ml", "anime", "douban"),
    archs: Sequence[str] = ("ncf", "lightgcn"),
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """``variance[arch][dataset][{'+ DDR', '- DDR'}]`` for the V_l table.

    RESKD is disabled in both arms so the comparison isolates DDR, which
    is also how the paper's Table V pairs with its ablation.
    """
    grid = run_grid(table5_specs(profile, datasets, archs, seed), jobs=jobs)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for arch in archs:
        results[arch] = {}
        for dataset in datasets:
            results[arch][dataset] = {
                label: grid[
                    _arm_spec(dataset, arch, profile, seed, overrides)
                ].collapse.get("l", 0.0)
                for label, overrides in ARMS
            }
    return results


def format_table5(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    blocks: List[str] = []
    for arch, per_dataset in results.items():
        headers = ["Variant"] + list(per_dataset)
        rows = []
        for variant in ("- DDR", "+ DDR"):
            row: List = [variant]
            for dataset in per_dataset:
                row.append(per_dataset[dataset][variant])
            rows.append(row)
        blocks.append(
            format_table(
                headers,
                rows,
                title=(
                    f"Table V ({arch}): singular-value variance of cov(V_l) "
                    "(higher = more collapsed)"
                ),
                float_format="{:.4f}",
            )
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(format_table5(run_table5()))
