"""Tests for the GMF base model and its factory/trainer integration."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core.config import HeteFedRecConfig
from repro.core.hetefedrec import HeteFedRec
from repro.models import GMF, MODEL_REGISTRY, build_model
from repro.nn.optim import Adam
from repro.autograd import ops


@pytest.fixture()
def gmf():
    return build_model("mf", num_items=12, dim=4, rng=np.random.default_rng(0))


class TestFactory:
    def test_registered(self):
        assert MODEL_REGISTRY["mf"] is GMF

    def test_build(self, gmf):
        assert isinstance(gmf, GMF)
        assert gmf.arch == "mf"
        assert gmf.item_embedding.weight.data.shape == (12, 4)


class TestScoring:
    def test_initial_logit_is_inner_product(self, gmf):
        """The GMF weight starts at all-ones, so the logit is u·v."""
        user = Tensor(np.array([1.0, 2.0, 0.0, -1.0]))
        items = np.array([0, 5], dtype=np.int64)
        logits = gmf.logits(user, items)
        table = gmf.item_embedding.weight.data
        expected = table[items] @ user.data
        assert np.allclose(logits.data, expected)

    def test_prefix_scoring_uses_prefix_head(self, gmf):
        small_head = build_model("mf", num_items=12, dim=2).head
        user = Tensor(np.array([1.0, 1.0, 1.0, 1.0]))
        logits = gmf.logits(user, np.array([0, 1]), width=2, head=small_head)
        table = gmf.item_embedding.weight.data
        expected = table[:2, :2] @ np.ones(2)
        assert np.allclose(logits.data, expected)

    def test_score_independent_of_mlp(self, gmf):
        """GMF must route around the MLP path entirely."""
        user = Tensor(np.ones(4))
        before = gmf.logits(user, np.array([0, 1, 2])).data.copy()
        for param in gmf.head.ffn.parameters():
            param.data += 100.0
        after = gmf.logits(user, np.array([0, 1, 2])).data
        assert np.allclose(before, after)

    def test_gradients_reach_embedding_and_gmf_weight_only(self, gmf):
        user = Tensor(np.ones(4), requires_grad=True)
        logits = gmf.logits(user, np.array([0, 1]))
        loss = ops.bce_with_logits(logits, np.array([1.0, 0.0]))
        loss.backward()
        assert gmf.item_embedding.weight.grad is not None
        assert np.any(gmf.item_embedding.weight.grad != 0)
        assert gmf.head.gmf.weight.grad is not None
        for param in gmf.head.ffn.parameters():
            assert param.grad is None or not np.any(param.grad != 0)

    def test_learns_a_simple_preference(self):
        """A few steps of Adam should separate a liked from a disliked item."""
        model = build_model("mf", num_items=4, dim=4, rng=np.random.default_rng(1))
        user = Tensor(np.random.default_rng(2).normal(0, 0.1, size=4), requires_grad=True)
        params = [user, model.item_embedding.weight, *model.head.parameters()]
        optimizer = Adam(params, lr=0.05)
        items = np.array([0, 1], dtype=np.int64)
        labels = np.array([1.0, 0.0])
        for _ in range(120):
            optimizer.zero_grad()
            loss = ops.bce_with_logits(model.logits(user, items), labels)
            loss.backward()
            optimizer.step()
        logits = model.logits(user, items).data
        assert logits[0] > logits[1]


class TestFederatedIntegration:
    def test_hetefedrec_trains_with_mf(self, tiny_dataset, tiny_clients):
        config = HeteFedRecConfig(
            arch="mf", epochs=1, clients_per_round=16, local_epochs=2, seed=0
        )
        trainer = HeteFedRec(tiny_dataset.num_items, tiny_clients, config)
        history = trainer.fit()
        assert np.isfinite(history.records[-1].train_loss)
        scores = trainer.score_all_items(tiny_clients[0])
        assert scores.shape == (tiny_dataset.num_items,)
