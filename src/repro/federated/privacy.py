"""Upload protection: clipping, local DP noise, pseudo-item obfuscation.

The paper's privacy model keeps user embeddings local, but — as the
FedRec attack literature it cites shows ([48], [49]: interaction-level
membership inference) — the *sparsity pattern* of an uploaded
item-embedding delta still reveals which items a client interacted with,
and raw delta values can leak rating signals.  This module implements the
three standard counter-measures, composable and individually optional:

* **Norm clipping**: bound each item row's delta norm (a prerequisite for
  any DP guarantee, and a robustness measure against poisoning scale).
* **Local differential privacy**: Gaussian noise on every uploaded value
  after clipping (the Gaussian mechanism; σ is expressed relative to the
  clip bound).
* **Pseudo-items**: the client also uploads plausible (noise) updates for
  a random set of items it never touched, hiding the true interaction
  support — the mechanism used by the FedNCF line of work ([44], [49]).

Enable by setting ``FederatedConfig.privacy`` to a :class:`PrivacyConfig`;
the trainer applies :func:`protect_update` to every upload.  Protection
composes with *every* method in the repo, including HeteFedRec — padding
aggregation is oblivious to whether a delta row is real or pseudo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.federated.payload import (
    ClientUpdate,
    EmbeddingDelta,
    SparseRowDelta,
    touched_rows,
)


@dataclass
class PrivacyConfig:
    """Which protections to apply to client uploads.

    ``clip_norm``:
        Maximum L2 norm per item-embedding row delta (0 disables).
    ``noise_std``:
        Gaussian noise std *relative to clip_norm* added to every
        uploaded scalar (0 disables).  Requires ``clip_norm`` > 0 to be
        meaningful as DP; applied as absolute std if clipping is off.
    ``pseudo_items``:
        Number of untouched items per upload that receive fabricated
        deltas (0 disables).  Fabricated rows are Gaussian with the same
        per-row norm distribution as the client's real rows, so they are
        statistically indistinguishable to the server.
    ``target_delta``:
        δ budget the privacy accountant composes against when both
        ``clip_norm`` and ``noise_std`` are active — see
        :mod:`repro.federated.accounting`.  Has no effect on the
        mechanism itself.
    """

    clip_norm: float = 0.0
    noise_std: float = 0.0
    pseudo_items: int = 0
    target_delta: float = 1e-5

    def __post_init__(self) -> None:
        if self.clip_norm < 0 or self.noise_std < 0 or self.pseudo_items < 0:
            raise ValueError("privacy parameters must be non-negative")
        if not 0 < self.target_delta < 1:
            raise ValueError(
                f"target_delta must be in (0, 1), got {self.target_delta}"
            )

    @property
    def enabled(self) -> bool:
        return bool(self.clip_norm or self.noise_std or self.pseudo_items)


def clip_rows(delta: np.ndarray, max_norm: float) -> np.ndarray:
    """Scale down any row whose L2 norm exceeds ``max_norm``."""
    if max_norm <= 0:
        return delta
    norms = np.linalg.norm(delta, axis=1, keepdims=True)
    scale = np.minimum(1.0, max_norm / np.maximum(norms, 1e-12))
    return delta * scale


def add_pseudo_items(
    delta: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Fabricate deltas for ``count`` untouched rows (returns a copy).

    Fake rows are drawn isotropic Gaussian, scaled to norms resampled
    from the client's real row-norm distribution, so support-based
    membership inference cannot separate real from fake.
    """
    if count <= 0:
        return delta
    real = touched_rows(delta)
    untouched = np.setdiff1d(np.arange(delta.shape[0]), real)
    if untouched.size == 0 or real.size == 0:
        return delta
    chosen = rng.choice(untouched, size=min(count, untouched.size), replace=False)

    real_norms = np.linalg.norm(delta[real], axis=1)
    fake = rng.normal(size=(chosen.size, delta.shape[1]))
    fake /= np.maximum(np.linalg.norm(fake, axis=1, keepdims=True), 1e-12)
    fake *= rng.choice(real_norms, size=chosen.size)[:, np.newaxis]

    out = delta.copy()
    out[chosen] = fake
    return out


def gaussian_noise_like(
    state: Dict[str, np.ndarray], std: float, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """A noisy copy of a head-delta state dict."""
    return {name: values + rng.normal(0.0, std, size=values.shape)
            for name, values in state.items()}


def _protect_sparse_delta(
    delta: SparseRowDelta,
    config: PrivacyConfig,
    sigma: float,
    rng: np.random.Generator,
) -> SparseRowDelta:
    """Sparse counterpart of the dense clip → pseudo → noise pipeline.

    Consumes the client RNG in exactly the dense order (pseudo-row
    choice, fake directions, fake norms, then support noise) so a sparse
    upload and its densified twin protect to the same values — the
    sparse-vs-dense equivalence suite pins this.  Work is O(rows) in the
    value blocks; only the pseudo-item *index* arithmetic touches the
    catalogue range, with no ``width`` factor.
    """
    rows = delta.rows
    values = clip_rows(delta.values, config.clip_norm)

    if config.pseudo_items > 0:
        real_pos = touched_rows(values)
        real = rows[real_pos]
        untouched = np.setdiff1d(np.arange(delta.num_rows), real)
        if untouched.size and real.size:
            chosen = rng.choice(
                untouched, size=min(config.pseudo_items, untouched.size), replace=False
            )
            real_norms = np.linalg.norm(values[real_pos], axis=1)
            fake = rng.normal(size=(chosen.size, delta.width))
            fake /= np.maximum(np.linalg.norm(fake, axis=1, keepdims=True), 1e-12)
            fake *= rng.choice(real_norms, size=chosen.size)[:, np.newaxis]

            merged_rows = np.union1d(rows, chosen)
            merged = np.zeros((merged_rows.size, delta.width), dtype=values.dtype)
            merged[np.searchsorted(merged_rows, rows)] = values
            # Assignment, not addition: the dense path overwrites the
            # chosen rows (they are untouched, hence zero, by selection).
            merged[np.searchsorted(merged_rows, chosen)] = fake
            rows, values = merged_rows, merged
        else:
            values = values.copy()
    else:
        values = values.copy()

    if sigma > 0:
        support = touched_rows(values)
        values[support] += rng.normal(0.0, sigma, size=(support.size, delta.width))

    return SparseRowDelta(delta.num_rows, rows, values)


def protect_update(
    update: ClientUpdate,
    config: PrivacyConfig,
    rng: np.random.Generator,
) -> ClientUpdate:
    """Apply the configured protections to one upload (pure function)."""
    if not config.enabled:
        return update

    sigma = config.noise_std * (config.clip_norm if config.clip_norm else 1.0)
    delta: EmbeddingDelta = update.embedding_delta
    if isinstance(delta, SparseRowDelta):
        delta = _protect_sparse_delta(delta, config, sigma, rng)
    elif delta.size:
        delta = clip_rows(delta, config.clip_norm)
        delta = add_pseudo_items(delta, config.pseudo_items, rng)

    heads = update.head_deltas
    if sigma > 0:
        if not isinstance(update.embedding_delta, SparseRowDelta) and delta.size:
            # Noise only on uploaded (touched + pseudo) rows: untouched
            # rows are structurally zero in the sparse upload encoding.
            support = touched_rows(delta)
            noisy = delta.copy()
            noisy[support] += rng.normal(0.0, sigma, size=(support.size, delta.shape[1]))
            delta = noisy
        heads = {
            group: gaussian_noise_like(state, sigma, rng)
            for group, state in heads.items()
        }

    return ClientUpdate(
        user_id=update.user_id,
        group=update.group,
        embedding_delta=delta,
        head_deltas=heads,
        num_examples=update.num_examples,
        train_loss=update.train_loss,
    )
