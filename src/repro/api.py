"""The blessed public API: six verbs and one import surface.

Everything a caller needs lives here.  The six **verbs** cover the full
artefact lifecycle the repo is built around (train → checkpoint → serve
→ keep training):

========================  ==================================================
verb                      does
========================  ==================================================
:func:`fit`               train a built method (checkpoint-resume aware)
:func:`save_checkpoint`   persist a trainer's full state to one ``.npz``
:func:`resume`            restore a trainer from a checkpoint, bitwise
:func:`load_model`        rebuild one group's inference model from a
                          checkpoint (group optional when unambiguous)
:func:`recommend`         one-shot top-k answers straight off a checkpoint
:func:`serve`             stand up the online serving layer (service
                          object, or blocking HTTP front end)
========================  ==================================================

Every other public name (configs, datasets, evaluators, baselines,
serving classes, experiment helpers) is re-exported here lazily — heavy
subsystems import only when first touched — so

    >>> from repro.api import HeteFedRecConfig, build_method, fit

is the one import line callers and all ``examples/*.py`` use.  The old
deep-import paths (``repro.federated.checkpoint.save_checkpoint`` and
friends) keep working for one release but raise ``DeprecationWarning``;
this module is the stable surface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.serving import Recommendation, RecommendationService

# ----------------------------------------------------------------------
# Lazy re-export surface: name -> defining module.  PEP 562 __getattr__
# resolves these on first access so `import repro.api` stays light.
# ----------------------------------------------------------------------
_EXPORTS = {
    # core framework
    "HeteFedRec": "repro.core",
    "HeteFedRecConfig": "repro.core",
    "divide_clients": "repro.core.grouping",
    "group_counts": "repro.core.grouping",
    "Candidate": "repro.core.size_search",
    "successive_halving": "repro.core.size_search",
    # federation
    "FederatedConfig": "repro.federated",
    "FederatedTrainer": "repro.federated",
    "AvailabilityConfig": "repro.federated.availability",
    "PrivacyConfig": "repro.federated.privacy",
    "SecureAggregationConfig": "repro.federated.secure_agg",
    "SecureAggregationSession": "repro.federated.secure_agg",
    "SystemProfile": "repro.federated.systems",
    "round_time_summary": "repro.federated.systems",
    "simulate_round_times": "repro.federated.systems",
    "time_to_accuracy": "repro.federated.systems",
    "UnlearningHeteFedRec": "repro.federated.unlearning",
    # checkpoints
    "CheckpointMismatchError": "repro.federated.checkpoint",
    "UnknownGroupError": "repro.federated.checkpoint",
    "checkpoint_groups": "repro.federated.checkpoint",
    "read_manifest": "repro.federated.checkpoint",
    "user_embedding_from_checkpoint": "repro.federated.checkpoint",
    # baselines
    "METHODS": "repro.baselines",
    "build_method": "repro.baselines",
    "DISPLAY_NAMES": "repro.baselines.registry",
    "TABLE2_ORDER": "repro.baselines.registry",
    # data
    "InteractionDataset": "repro.data",
    "SyntheticConfig": "repro.data",
    "load_benchmark_dataset": "repro.data",
    "train_test_split_per_user": "repro.data",
    "load_movielens": "repro.data.movielens",
    "save_ratings": "repro.data.movielens",
    "dataset_statistics": "repro.data.stats",
    # evaluation
    "Evaluator": "repro.eval",
    "per_group_metrics": "repro.eval",
    "blocked_top_k": "repro.eval",
    # subsystems
    "CompressionConfig": "repro.compression",
    "AdversarialHeteFedRec": "repro.robustness",
    "AttackConfig": "repro.robustness",
    "RobustAggregationConfig": "repro.robustness",
    # experiment harness helpers the examples use
    "format_table": "repro.experiments.reporting",
    "format_table3": "repro.experiments.table3",
    "hetefedrec_extra_head_cost": "repro.experiments.table3",
    "run_table3": "repro.experiments.table3",
    # serving
    "RecommendationService": "repro.serving",
    "RequestCoalescer": "repro.serving",
    "Recommendation": "repro.serving",
    "QueryRequest": "repro.serving",
    "ModelSnapshot": "repro.serving",
    "load_snapshot": "repro.serving",
    "TopKCache": "repro.serving",
    "UnknownUserError": "repro.serving",
    # serving resilience + chaos
    "ResilientService": "repro.serving",
    "ResilienceConfig": "repro.serving",
    "AdmissionQueue": "repro.serving",
    "CircuitBreaker": "repro.serving",
    "HealthMonitor": "repro.serving",
    "ShedError": "repro.serving",
    "DeadlineExceededError": "repro.serving",
    "CircuitOpenError": "repro.serving",
    "ManualClock": "repro.serving.chaos",
    "ServingChaosConfig": "repro.serving.chaos",
    "run_chaos_scenario": "repro.serving.chaos",
}

__all__ = sorted(
    [
        "fit",
        "save_checkpoint",
        "resume",
        "load_model",
        "recommend",
        "serve",
        *_EXPORTS,
    ]
)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return __all__


# ----------------------------------------------------------------------
# The six verbs
# ----------------------------------------------------------------------
def fit(trainer, evaluator=None):
    """Train ``trainer`` to its configured epoch budget; return the history.

    Checkpoint-resume aware: a trainer restored via :func:`resume` picks
    up at the epoch it left off, and a ``checkpoint_path`` in its config
    keeps autosaving as training progresses.  ``evaluator`` (an
    :class:`Evaluator`) turns on per-epoch metric tracking.
    """
    return trainer.fit(evaluator)


def save_checkpoint(trainer, path: str) -> None:
    """Persist ``trainer``'s full state — models, user embeddings, RNG
    streams, progress — to one ``.npz`` checkpoint (plus a readable
    ``.meta.json`` sidecar)."""
    from repro.federated.checkpoint import save_checkpoint_impl

    save_checkpoint_impl(trainer, path)


def resume(trainer, path: str):
    """Restore ``trainer`` from ``path`` and return it, ready to
    :func:`fit` onward bitwise-identically to a never-interrupted run.

    Raises :class:`CheckpointMismatchError` when the checkpoint was
    produced under an incompatible configuration.
    """
    from repro.federated.checkpoint import load_checkpoint_impl

    load_checkpoint_impl(trainer, path)
    return trainer


def load_model(path: str, group: Optional[str] = None):
    """Rebuild one dim-group's inference model from a checkpoint.

    Returns ``(model, meta)``.  ``group`` may be omitted when the
    checkpoint holds a single group; otherwise the raised
    :class:`UnknownGroupError` lists the valid choices.
    """
    from repro.federated.checkpoint import load_inference_model_impl

    return load_inference_model_impl(path, group)


def recommend(
    checkpoint: Union[str, "RecommendationService"],
    user_ids: Union[int, Sequence[int]],
    k: int = 20,
    exclude: Optional["np.ndarray"] = None,
) -> Union["Recommendation", list]:
    """One-shot top-k answers straight off a checkpoint.

    ``checkpoint`` is a path (a throwaway service is warm-loaded for the
    call) or an existing :class:`RecommendationService` (reusing its
    cache and snapshot).  A scalar ``user_ids`` returns one
    :class:`Recommendation`; a sequence returns a list, scored as one
    batch.  For sustained traffic build the service once via
    :func:`serve` instead of re-loading per call.
    """
    from repro.serving import QueryRequest, RecommendationService

    service = (
        checkpoint
        if isinstance(checkpoint, RecommendationService)
        else RecommendationService(checkpoint, k=k)
    )
    if isinstance(user_ids, (int,)) or hasattr(user_ids, "__index__"):
        return service.query(int(user_ids), k=k, exclude=exclude)
    requests = [QueryRequest(int(user), k, exclude) for user in user_ids]
    return service.query_batch(requests)


def serve(
    checkpoint: str,
    host: Optional[str] = None,
    port: int = 8777,
    k: int = 20,
    cache_size: int = 4096,
    max_batch: int = 32,
    max_wait_ms: float = 5.0,
    history=None,
    exclude_seen: bool = False,
    verbose: bool = True,
    resilience: Union[bool, "object", None] = None,
    watch: Optional[str] = None,
    watch_interval_s: float = 2.0,
    request_timeout_s: Optional[float] = 30.0,
):
    """Stand up the online serving layer over ``checkpoint``.

    With ``host=None`` (the default) returns a ready
    :class:`RecommendationService` for in-process use — query it, swap
    checkpoints into it, wrap it in a :class:`RequestCoalescer`.  Pass
    ``resilience=True`` (or a :class:`ResilienceConfig`) to get a
    :class:`ResilientService` instead: admission control, deadline
    budgets, the degradation ladder, and circuit-broken hot-swap.

    With a ``host`` it *blocks*, running the stdlib JSON front end on
    ``host:port`` (the ``repro serve`` CLI entry) with concurrent HTTP
    requests coalesced into blocked matmuls.  The HTTP path always
    carries the resilience layer (shed → 503 + Retry-After, deadline
    overrun → 504, ``/healthz`` surfaces the health state machine) and
    drains gracefully on SIGTERM/SIGINT.  ``watch`` polls a checkpoint
    path and hot-swaps when a new valid one lands.
    """
    from repro.serving import (
        RecommendationService,
        ResilienceConfig,
        ResilientService,
    )

    service = RecommendationService(
        checkpoint,
        k=k,
        cache_size=cache_size,
        history=history,
        exclude_seen=exclude_seen,
    )
    resilience_config = (
        resilience if isinstance(resilience, ResilienceConfig) else None
    )
    if host is None:
        if resilience:
            resilient = ResilientService(service, resilience_config)
            if watch:
                resilient.watch(watch, interval_s=watch_interval_s)
            return resilient
        return service

    from repro.serving.coalescer import RequestCoalescer
    from repro.serving.http_api import run_server

    resilient = ResilientService(service, resilience_config)
    if watch:
        resilient.watch(watch, interval_s=watch_interval_s)
    coalescer = RequestCoalescer(
        resilient, max_batch=max_batch, max_wait_ms=max_wait_ms
    )
    run_server(
        service,
        host=host,
        port=port,
        coalescer=coalescer,
        verbose=verbose,
        resilience=resilient,
        request_timeout_s=request_timeout_s,
    )
    return service
