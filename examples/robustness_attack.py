"""Poisoning HeteFedRec and defending it: the four-quadrant experiment.

Run:
    python examples/robustness_attack.py

A fraction of clients uploads sign-flipped, amplified updates (the
strongest untargeted baseline of the FedRec attack literature the paper
cites).  We train the four quadrants — {clean, attacked} × {undefended,
defended} — and report the ranking quality of each, showing the damage
an unprotected heterogeneous aggregation takes and how much a robust
server rule recovers.
"""

from repro.api import (
    AdversarialHeteFedRec,
    AttackConfig,
    Evaluator,
    format_table,
    HeteFedRecConfig,
    load_benchmark_dataset,
    RobustAggregationConfig,
    SyntheticConfig,
    train_test_split_per_user,
)

ATTACK = AttackConfig(kind="signflip", fraction=0.2, scale=25.0, seed=7)
DEFENSE = RobustAggregationConfig(kind="clip", clip_headroom=2.0)


def main() -> None:
    dataset = load_benchmark_dataset("ml", SyntheticConfig(scale=0.02, seed=0))
    clients = train_test_split_per_user(dataset, seed=0)
    evaluator = Evaluator(clients, k=20)
    config = HeteFedRecConfig(epochs=6, seed=0)
    print(f"{dataset}")
    print(f"attack: {ATTACK.kind}, {ATTACK.fraction:.0%} malicious, "
          f"×{ATTACK.scale:g} amplification; defense: {DEFENSE.kind}\n")

    quadrants = [
        ("clean / undefended", None, None),
        ("clean / defended", None, DEFENSE),
        ("attacked / undefended", ATTACK, None),
        ("attacked / defended", ATTACK, DEFENSE),
    ]
    rows = []
    for label, attack, defense in quadrants:
        trainer = AdversarialHeteFedRec(
            dataset.num_items, clients, config, attack=attack, defense=defense
        )
        trainer.fit()
        honest = trainer.honest_clients()
        result = evaluator.evaluate(trainer.score_all_items, user_subset=honest)
        rows.append([label, result.recall, result.ndcg])
        print(f"finished: {label}")

    print()
    print(
        format_table(
            ["Scenario", "Recall@20", "NDCG@20"],
            rows,
            title="Poisoning and defence (honest clients only)",
        )
    )
    print(
        "\nReading the quadrants: the defence should cost little when\n"
        "clean (row 2 vs 1) and recover most of the damage when attacked\n"
        "(row 4 vs 3)."
    )


if __name__ == "__main__":
    main()
