"""Optimisers: SGD and Adam.

Adam follows Kingma & Ba (2014) exactly, the optimiser the paper uses
(Section V-D, learning rate 0.001).  Both optimisers operate on any
iterable of parameters, so a federated client can optimise just its local
model's parameter subset.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Common bookkeeping: parameter list, ``zero_grad`` and ``step``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.setdefault(id(param), np.zeros_like(param.data))
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2014)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            m = self._m.setdefault(key, np.zeros_like(param.data))
            v = self._v.setdefault(key, np.zeros_like(param.data))
            t = self._t.get(key, 0) + 1
            self._t[key] = t
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            # Two temporaries instead of five: the moments of a fused
            # round engine bucket span (B, S, d) stacks, so every avoided
            # full-size allocation is measurable on the round hot path.
            denom = v / (1.0 - self.beta2**t)
            np.sqrt(denom, out=denom)
            denom += self.eps
            step = m / (1.0 - self.beta1**t)
            step /= denom
            step *= self.lr
            param.data -= step

    def reset_state(self) -> None:
        """Forget moment estimates (used when a client re-joins a round)."""
        self._m.clear()
        self._v.clear()
        self._t.clear()
