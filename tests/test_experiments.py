"""Tests for the experiment harness: profiles, runner, cache, formatters."""

import os

import numpy as np
import pytest

from repro.experiments import PROFILES, format_table, run_method
from repro.experiments.fig1 import format_fig1, run_fig1
from repro.experiments.fig7 import convergence_epochs
from repro.experiments.fig8 import has_interior_peak
from repro.experiments.profiles import get_profile
from repro.experiments.reporting import ascii_bar, format_series
from repro.experiments.runner import RunResult, clear_cache
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table3 import (
    format_table3,
    hetefedrec_extra_head_cost,
    run_table3,
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    import repro.experiments.runner as runner

    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path / "cache"))
    yield


class TestProfiles:
    def test_three_profiles(self):
        assert set(PROFILES) == {"smoke", "bench", "full"}

    def test_ordering(self):
        assert PROFILES["smoke"].scale < PROFILES["bench"].scale <= PROFILES["full"].scale

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("huge")


class TestRunner:
    def test_run_and_cache(self):
        first = run_method("ml", "all_small", profile="smoke")
        second = run_method("ml", "all_small", profile="smoke")
        assert first.ndcg == second.ndcg
        assert isinstance(first, RunResult)
        assert first.communication_total > 0
        assert set(first.group_ndcg) >= {"s", "m", "l"}

    def test_overrides_change_cache_key(self):
        a = run_method("ml", "hetefedrec", profile="smoke")
        b = run_method(
            "ml", "hetefedrec", profile="smoke",
            config_overrides={"alpha": 9.9},
        )
        # Different configs may coincidentally tie on metrics, but they
        # must at least be separate cache entries (both persisted).
        import repro.experiments.runner as runner

        files = os.listdir(runner.CACHE_DIR)
        assert len(files) >= 2

    def test_json_roundtrip(self):
        result = run_method("ml", "all_small", profile="smoke")
        clone = RunResult.from_json(result.to_json())
        assert clone.ndcg == result.ndcg
        assert clone.ndcg_curve == result.ndcg_curve

    def test_clear_cache(self):
        run_method("ml", "all_small", profile="smoke")
        assert clear_cache() >= 1


class TestTable1AndFig1:
    def test_table1_rows(self):
        stats = run_table1("smoke")
        assert set(stats) == {"ml", "anime", "douban"}
        text = format_table1(stats)
        assert "Table I" in text and "ml" in text and "paper" in text

    def test_fig1(self):
        results = run_fig1("smoke", bins=6)
        text = format_fig1(results)
        assert "std" in text
        for name, result in results.items():
            assert result["hist"].sum() > 0


class TestTable3:
    def test_costs_monotone_in_group(self):
        costs = run_table3("smoke")
        assert costs["s"]["hetefedrec"] < costs["m"]["hetefedrec"] < costs["l"]["hetefedrec"]
        text = format_table3(costs)
        assert "Table III" in text

    def test_extra_cost_structure(self):
        extra = hetefedrec_extra_head_cost()
        assert extra["l"] > extra["m"] > 0


class TestAnalysisHelpers:
    def test_convergence_epochs(self):
        fake = RunResult(
            dataset="ml", method="x", arch="ncf", profile="smoke",
            recall=0.2, ndcg=0.1,
            group_recall={}, group_ndcg={},
            ndcg_curve=[(1, 0.02), (2, 0.08), (3, 0.095), (4, 0.1)],
            communication_total=0, communication_per_round=0.0, collapse={},
        )
        epochs = convergence_epochs({"ncf": {"x": fake}}, fraction=0.9)
        assert epochs["ncf"]["x"] == 3

    def test_interior_peak_detection(self):
        def fake(ndcg):
            return RunResult(
                dataset="ml", method="hetefedrec", arch="ncf", profile="smoke",
                recall=0.0, ndcg=ndcg, group_recall={}, group_ndcg={},
                ndcg_curve=[], communication_total=0,
                communication_per_round=0.0, collapse={},
            )

        peaked = [(0.1, fake(0.1)), (0.5, fake(0.3)), (1.0, fake(0.2))]
        monotone = [(0.1, fake(0.1)), (0.5, fake(0.2)), (1.0, fake(0.3))]
        assert has_interior_peak(peaked)
        assert not has_interior_peak(monotone)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1.5, "x"], [2.25, "yyyy"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(line) for line in lines[1:])) <= 2  # aligned

    def test_ascii_bar(self):
        assert ascii_bar(5, 10, width=10) == "#####"
        assert ascii_bar(0, 10) == ""
        assert ascii_bar(1, 0) == ""

    def test_format_series(self):
        text = format_series([(1, 0.5), (2, 0.75)], label="curve")
        assert "curve" in text
        assert "0.7500" in text
