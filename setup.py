"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package (needed for PEP-517 editable builds) is absent."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.23"],
    python_requires=">=3.10",
)
