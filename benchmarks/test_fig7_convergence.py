"""Benchmark: Fig. 7 — convergence curves on MovieLens.

Shape targets (paper): every method converges within the training budget
(the NDCG curve flattens), and HeteFedRec's converged value is at least
competitive with the homogeneous baselines.  This benchmark also covers
the Fed-LightGCN generalisation check.
"""

from benchmarks.conftest import GENERALISATION_ARCHS, HEADLINE_ARCHS
from repro.experiments.fig7 import convergence_epochs, format_fig7, run_fig7


def test_fig7_convergence_ncf(benchmark, artifact):
    results = benchmark.pedantic(
        lambda: run_fig7("bench", archs=HEADLINE_ARCHS),
        rounds=1,
        iterations=1,
    )
    artifact("fig7_convergence", format_fig7(results))

    epochs = convergence_epochs(results, fraction=0.9)
    print("\nepochs to reach 90% of final NDCG:", epochs)
    for arch, per_method in results.items():
        for method, run in per_method.items():
            assert len(run.ndcg_curve) >= 3, (arch, method)
            # Converged: the last two evaluations are close (flat tail).
            tail = [v for _, v in run.ndcg_curve[-2:]]
            assert abs(tail[1] - tail[0]) < 0.5 * max(tail[1], 1e-9), (arch, method)


def test_fig7_lightgcn_generalisation(benchmark, artifact):
    """The paper's trends hold for the second base model as well."""
    results = benchmark.pedantic(
        lambda: run_fig7(
            "bench",
            archs=GENERALISATION_ARCHS,
            methods=("all_small", "hetefedrec"),
        ),
        rounds=1,
        iterations=1,
    )
    artifact("fig7_lightgcn", format_fig7(results))
    for per_method in results.values():
        for method, run in per_method.items():
            assert run.ndcg > 0, method
