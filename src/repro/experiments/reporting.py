"""Plain-text table formatting for experiment reports.

Prints paper-style tables to stdout without any plotting dependency;
figures are rendered as aligned numeric series (epoch/value pairs or
ASCII bars), which is what a terminal-only reproduction can ship.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    float_format: str = "{:.5f}",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def ascii_bar(value: float, maximum: float, width: int = 40) -> str:
    """A horizontal bar scaled to ``maximum`` (for figure-style output)."""
    if maximum <= 0:
        return ""
    filled = int(round(width * max(value, 0.0) / maximum))
    return "#" * min(filled, width)


def format_series(
    series: Sequence[tuple],
    label: str = "",
    value_format: str = "{:.4f}",
) -> str:
    """Render an (x, y) series as one aligned line per point."""
    lines = [label] if label else []
    for x, y in series:
        lines.append(f"  {x:>6}  {value_format.format(y)}")
    return "\n".join(lines)
