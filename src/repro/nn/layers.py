"""Layers: Linear, Embedding, Sequential and pointwise activations."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine layer ``y = x W + b`` with Xavier-initialised weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng=rng), name="weight"
        )
        self.has_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_features,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.has_bias:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.has_bias})"


class Embedding(Module):
    """Lookup table with sparse-aware gradients.

    ``forward`` takes integer indices and returns the selected rows; the
    backward pass accumulates only into the touched rows (via
    :func:`repro.autograd.ops.gather`).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        std: float = 0.01,
        rng: Optional[np.random.Generator] = None,
        weight: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        if weight is not None:
            if weight.shape != (num_embeddings, embedding_dim):
                raise ValueError(
                    f"explicit weight shape {weight.shape} does not match "
                    f"({num_embeddings}, {embedding_dim})"
                )
            values = np.array(weight, dtype=np.float64)
        else:
            values = init.normal((num_embeddings, embedding_dim), std=std, rng=rng)
        self.weight = Parameter(values, name="embedding")

    def forward(self, indices: Union[np.ndarray, Sequence[int]]) -> Tensor:
        return ops.gather(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self) -> Iterable[Module]:
        return iter(getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __repr__(self) -> str:
        inner = ", ".join(repr(getattr(self, name)) for name in self._order)
        return f"Sequential({inner})"
