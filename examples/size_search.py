"""Automatic ratio/size selection — the paper's stated future work.

Run:
    python examples/size_search.py

The paper's conclusion: "how to find the optimal solution of client
group division and model sizes for each group is also non-trivial as
HeteFedRec's performance is very sensitive to these settings.  In future
work, we would like to explore [...]".  This example runs the
successive-halving search (``repro.core.size_search``) over the joint
Table VI × Table VII grid on a validation signal, then trains the winner
to full length and compares it to the paper's default setting.
"""

from repro.api import (
    build_method,
    Candidate,
    Evaluator,
    HeteFedRecConfig,
    load_benchmark_dataset,
    successive_halving,
    SyntheticConfig,
    train_test_split_per_user,
)

CANDIDATES = [
    Candidate.make(ratios, dims)
    for ratios in [(5, 3, 2), (1, 1, 1), (2, 3, 5)]
    for dims in [{"s": 4, "m": 8, "l": 16}, {"s": 8, "m": 16, "l": 32}]
]


def main() -> None:
    dataset = load_benchmark_dataset("ml", SyntheticConfig(scale=0.02, seed=0))
    clients = train_test_split_per_user(dataset, seed=0)
    evaluator = Evaluator(clients, k=20)
    print(f"{dataset}\n")

    search_config = HeteFedRecConfig(seed=0, clients_per_round=64)
    result = successive_halving(
        dataset.num_items, clients, search_config,
        candidates=CANDIDATES, epochs_per_rung=2,
    )

    print("search trace:")
    for record in result.rungs:
        print(f"  rung {record.rung} ({record.epochs_each} epoch(s) each):")
        for candidate, score in sorted(record.scores, key=lambda p: -p[1]):
            print(f"    valid-NDCG={score:.5f}  {candidate.describe()}")
    print(f"\nwinner: {result.best.describe()}")
    print(f"pilot budget spent: {result.total_epochs_trained} candidate-epochs\n")

    # Full-length comparison: searched setting vs the paper default.
    for label, config in [
        ("paper default", HeteFedRecConfig(epochs=8, seed=0)),
        ("searched", result.best_config(HeteFedRecConfig(epochs=8, seed=0))),
    ]:
        trainer = build_method("hetefedrec", dataset.num_items, clients, config)
        trainer.fit()
        evaluation = evaluator.evaluate(trainer.score_all_items)
        print(f"{label:<14} {evaluation}")


if __name__ == "__main__":
    main()
