"""Update compression: accuracy vs bytes-on-the-wire.

Run:
    python examples/compression_tradeoff.py

HeteFedRec already shrinks communication structurally (small clients
move small tables — Table III).  Compression (``repro.compression``) is
the orthogonal lever: sparsify or quantise whatever is uploaded.  This
example sweeps codecs and reports upload volume next to ranking quality,
with error feedback on and off for the aggressive top-k setting.
"""

from repro.api import (
    build_method,
    CompressionConfig,
    Evaluator,
    format_table,
    HeteFedRecConfig,
    load_benchmark_dataset,
    SyntheticConfig,
    train_test_split_per_user,
)

CODECS = [
    ("dense uploads", None),
    ("top-k 25%", CompressionConfig(kind="topk", ratio=0.25)),
    ("top-k 10% + EF", CompressionConfig(kind="topk", ratio=0.10, error_feedback=True)),
    ("top-k 10%, no EF", CompressionConfig(kind="topk", ratio=0.10, error_feedback=False)),
    ("random-k 25%", CompressionConfig(kind="randomk", ratio=0.25)),
    ("8-bit quantise", CompressionConfig(kind="quantize", bits=8)),
    ("4-bit quantise", CompressionConfig(kind="quantize", bits=4)),
]


def main() -> None:
    dataset = load_benchmark_dataset("ml", SyntheticConfig(scale=0.02, seed=0))
    clients = train_test_split_per_user(dataset, seed=0)
    evaluator = Evaluator(clients, k=20)
    print(f"{dataset}\n")

    rows = []
    baseline_upload = None
    for label, compression in CODECS:
        config = HeteFedRecConfig(epochs=6, seed=0, compression=compression)
        trainer = build_method("hetefedrec", dataset.num_items, clients, config)
        trainer.fit()
        result = evaluator.evaluate(trainer.score_all_items)
        upload = trainer.meter.total_upload
        if baseline_upload is None:
            baseline_upload = upload
        rows.append(
            [label, f"{upload / baseline_upload:.2f}x", result.recall, result.ndcg]
        )
        print(f"finished: {label}")

    print()
    print(
        format_table(
            ["Codec", "Upload vol.", "Recall@20", "NDCG@20"],
            rows,
            title="Compression trade-off (HeteFedRec, Fed-NCF)",
        )
    )
    print(
        "\nQuantisation is nearly free; aggressive sparsification needs\n"
        "error feedback to stay close to the dense baseline."
    )


if __name__ == "__main__":
    main()
