"""Tests for the automatic division/size search (future-work extension)."""

import numpy as np
import pytest

from repro.core import HeteFedRec, HeteFedRecConfig
from repro.core.autodivision import (
    SearchResult,
    auto_configure,
    search_division_ratio,
    search_model_sizes,
    validation_ndcg,
)


def config(**overrides):
    base = dict(
        dims={"s": 4, "m": 6, "l": 8},
        epochs=1,
        local_epochs=1,
        lr=0.01,
        seed=0,
    )
    base.update(overrides)
    return HeteFedRecConfig(**base)


class TestValidationNDCG:
    def test_uses_validation_not_test(self, tiny_dataset, tiny_clients):
        trainer = HeteFedRec(tiny_dataset.num_items, tiny_clients, config())
        trainer.run_epoch(1)
        value = validation_ndcg(trainer, tiny_clients, k=10)
        assert 0.0 <= value <= 1.0

    def test_empty_validation_sets(self, tiny_dataset):
        from repro.data.splitting import train_test_split_per_user

        clients = train_test_split_per_user(tiny_dataset, valid_fraction=0.0, seed=0)
        trainer = HeteFedRec(tiny_dataset.num_items, clients, config())
        assert validation_ndcg(trainer, clients) == 0.0


class TestRatioSearch:
    def test_scores_every_candidate(self, tiny_dataset, tiny_clients):
        candidates = ((5, 3, 2), (1, 1, 1))
        result = search_division_ratio(
            tiny_dataset.num_items,
            tiny_clients,
            config(),
            candidates=candidates,
            pilot_epochs=1,
        )
        assert isinstance(result, SearchResult)
        assert len(result.scores) == 2
        assert result.best in [tuple(c) for c in candidates]
        assert result.score_of(result.best) == max(s for _, s in result.scores)

    def test_score_of_unknown_candidate(self, tiny_dataset, tiny_clients):
        result = search_division_ratio(
            tiny_dataset.num_items, tiny_clients, config(),
            candidates=((5, 3, 2),), pilot_epochs=1,
        )
        with pytest.raises(KeyError):
            result.score_of((9, 9, 9))


class TestSizeSearch:
    def test_returns_dims_dict(self, tiny_dataset, tiny_clients):
        candidates = ({"s": 2, "m": 4, "l": 6}, {"s": 4, "m": 6, "l": 8})
        result = search_model_sizes(
            tiny_dataset.num_items,
            tiny_clients,
            config(),
            candidates=candidates,
            pilot_epochs=1,
        )
        assert set(result.best) == {"s", "m", "l"}


class TestAutoConfigure:
    def test_end_to_end(self, tiny_dataset, tiny_clients):
        tuned = auto_configure(
            tiny_dataset.num_items, tiny_clients, config(), pilot_epochs=1
        )
        assert isinstance(tuned, HeteFedRecConfig)
        assert set(tuned.dims) == {"s", "m", "l"}
        assert len(tuned.ratios) == 3
        # The tuned config trains.
        trainer = HeteFedRec(tiny_dataset.num_items, tiny_clients, tuned)
        assert np.isfinite(trainer.run_epoch(1))
