"""HeteFedRec reproduction: federated recommendation with model heterogeneity.

Reproduces *HeteFedRec: Federated Recommender Systems with Model
Heterogeneity* (Yuan et al., ICDE 2024) end to end on a from-scratch
numpy substrate: autodiff engine, NCF/LightGCN recommenders, federated
simulation, the HeteFedRec framework, all six paper baselines, and the
full experiment harness for every table and figure.

The stable public import surface is :mod:`repro.api` — one module,
six lifecycle verbs (``fit``, ``save_checkpoint``, ``resume``,
``load_model``, ``recommend``, ``serve``) plus every public class and
helper, re-exported lazily.  The names below stay importable from
``repro`` directly for convenience.

Quickstart
----------
>>> from repro import quick_run
>>> result = quick_run(dataset="ml", method="hetefedrec", epochs=3)
>>> print(result)                                        # doctest: +SKIP
Recall@20=... NDCG@20=...
"""

from repro.core import HeteFedRec, HeteFedRecConfig
from repro.federated import FederatedConfig, FederatedTrainer
from repro.baselines import METHODS, build_method
from repro.data import (
    InteractionDataset,
    SyntheticConfig,
    load_benchmark_dataset,
    train_test_split_per_user,
)
from repro.eval import Evaluator
from repro.api import (
    fit,
    load_model,
    recommend,
    resume,
    save_checkpoint,
    serve,
)

__version__ = "1.1.0"

__all__ = [
    "HeteFedRec",
    "HeteFedRecConfig",
    "FederatedConfig",
    "FederatedTrainer",
    "METHODS",
    "build_method",
    "InteractionDataset",
    "SyntheticConfig",
    "load_benchmark_dataset",
    "train_test_split_per_user",
    "Evaluator",
    "quick_run",
    "fit",
    "load_model",
    "recommend",
    "resume",
    "save_checkpoint",
    "serve",
]


def quick_run(
    dataset: str = "ml",
    method: str = "hetefedrec",
    arch: str = "ncf",
    epochs: int = 5,
    scale: float = 0.04,
    seed: int = 0,
):
    """Train one method on one (small) dataset and return its evaluation.

    A convenience wrapper for interactive use and the quickstart example;
    the experiment harness in :mod:`repro.experiments` offers full control.
    """
    data = load_benchmark_dataset(dataset, SyntheticConfig(scale=scale, seed=seed))
    clients = train_test_split_per_user(data, seed=seed)
    config = HeteFedRecConfig(arch=arch, epochs=epochs, seed=seed)
    trainer = build_method(method, data.num_items, clients, config)
    evaluator = Evaluator(clients)
    trainer.fit()
    return trainer.evaluate_with(evaluator)
