"""Checkpointing: persist and restore a federated training run, fully.

A checkpoint captures **everything that feeds the training stream**, so
the repo's bitwise-restart contract holds: *stop at epoch k, resume,
finish → bitwise-identical to the uninterrupted run* (pinned by
``tests/test_checkpoint_resume.py`` the same way
``tests/test_round_engine.py`` pins engine-vs-reference).  Beyond the
per-group public parameters and every client's private user embedding,
that means:

* server-optimiser first/second moments (FedAvgM / FedAdam / FedYogi);
* the trainer's permutation RNG and any subclass streams (HeteFedRec's
  KD/DDR generators), plus each client runtime's private RNG and
  negative-sampler stream (``bit_generator.state`` into the manifest);
* the :class:`~repro.federated.availability.StragglerBuffer`'s pending
  updates, sparse form preserved;
* per-client compression residuals (error feedback);
* the :class:`~repro.federated.communication.CommunicationMeter`, the
  training history, and the epoch/round counters;
* subclass extras through the ``_checkpoint_extra_state`` hook (the
  unlearning ledger, Standalone's per-client model copies).

Layout: one ``.npz`` holding all arrays *and* an embedded JSON manifest
(key ``__manifest__``), written atomically (tmp + ``os.replace``, the
same discipline as ``.repro_cache/``) so a crash mid-save can never
leave a torn checkpoint; a human-readable ``.meta.json`` sidecar is
written alongside for inspection and single-group deploy tooling.

The manifest is versioned and validated on load:
:func:`load_checkpoint` raises :class:`CheckpointMismatchError` when the
receiving trainer's architecture, dims, hidden sizes, catalogue size,
dtype, feature set (availability / secure-agg / server-optimiser /
compression / method) or group assignment does not match — never a
silent truncation.

Deploy-side, :func:`load_inference_model` restores one group's model for
serving (in the dtype it was trained in) without reconstructing the
trainer.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.federated.payload import ClientUpdate, SparseRowDelta
from repro.models.factory import build_model

#: Manifest schema version; bump on layout changes.  Loading any other
#: version raises :class:`CheckpointMismatchError` — resume correctness
#: depends on every state section being present and understood.
#: Version 3 added the privacy accountant's state (``accounting``).
FORMAT_VERSION = 3


class CheckpointMismatchError(ValueError):
    """The checkpoint does not describe the trainer it is being loaded into."""


class UnknownGroupError(KeyError):
    """A dim-group name that the checkpoint's manifest does not carry.

    Subclasses :class:`KeyError` for backward compatibility with callers
    that caught the old bare ``KeyError``, but renders its message plain
    (``KeyError.__str__`` would wrap it in quotes) and always lists the
    valid groups.
    """

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.args[0] if self.args else ""


# ----------------------------------------------------------------------
# Path conventions (unchanged from the parameter-only format)
# ----------------------------------------------------------------------
def _npz_path(path: str) -> str:
    return path if path.endswith(".npz") else path + ".npz"


def _meta_path(path: str) -> str:
    return path + ".meta.json"


def _atomic_write(path: str, writer) -> None:
    """Write ``path`` via tmp + ``os.replace`` (same-directory, atomic).

    Creates the parent directory: an autosave must not train a whole
    epoch only to crash on a missing ``--checkpoint`` target directory.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        writer(fd)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def checkpoint_files(path: str) -> Tuple[str, str]:
    """The ``(npz, sidecar)`` file pair a checkpoint at ``path`` occupies."""
    return _npz_path(path), _meta_path(path)


def remove_checkpoint(path: str) -> None:
    """Delete a checkpoint's files if present (idempotent)."""
    for name in checkpoint_files(path):
        try:
            os.remove(name)
        except FileNotFoundError:
            pass


def read_manifest(path: str) -> dict:
    """A checkpoint's manifest: the npz-embedded copy (authoritative),
    falling back to the ``.meta.json`` sidecar."""
    npz = _npz_path(path)
    if os.path.exists(npz):
        with np.load(npz) as archive:
            if "__manifest__" in archive.files:
                return json.loads(archive["__manifest__"].item())
    with open(_meta_path(path), encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------
def _flatten_states(trainer) -> Dict[str, np.ndarray]:
    """All public parameters under ``model/{group}/{param}`` keys, plus
    user embeddings under ``user/{id}``."""
    arrays: Dict[str, np.ndarray] = {}
    for group, model in trainer.models.items():
        for name, values in model.state_dict().items():
            arrays[f"model/{group}/{name}"] = values
    for user_id, runtime in trainer.runtimes.items():
        arrays[f"user/{user_id}"] = runtime.user_embedding
    return arrays


def _feature_signature(trainer) -> Dict[str, object]:
    """The stream-shaping feature set two trainers must agree on to share
    a checkpoint — method and every optional protocol component."""
    cfg = trainer.config
    return {
        "method": trainer.method_name,
        "secure_aggregation": cfg.secure_aggregation is not None,
        "server_optimizer": (
            cfg.server_optimizer.kind if cfg.server_optimizer is not None else None
        ),
        "availability": bool(
            cfg.availability is not None and cfg.availability.enabled
        ),
        "compression": (
            cfg.compression.kind
            if cfg.compression is not None and cfg.compression.kind != "none"
            else None
        ),
        "privacy": bool(cfg.privacy is not None and cfg.privacy.enabled),
    }


def _data_digest(trainer) -> str:
    """Fingerprint of every client's training split, in user order.

    The split itself is not stored in a checkpoint (clients own their
    data), so two trainers can only share one if they were built over
    the *same* per-user train items — a different split seed keeps the
    same users and counts but permutes which interactions train, which
    would silently break the bitwise-resume contract.  The config seed
    is deliberately not compared directly: identical data under a
    different seed label is a legitimate warm start (every RNG's live
    state is restored from the manifest anyway).
    """
    digest = hashlib.sha256()
    for user_id in sorted(trainer.runtimes):
        digest.update(str(user_id).encode())
        digest.update(
            np.ascontiguousarray(
                np.asarray(trainer.runtimes[user_id].data.train_items, dtype=np.int64)
            ).tobytes()
        )
    return digest.hexdigest()


def _training_signature(trainer) -> Dict[str, object]:
    """Hyper-parameters that shape every remaining epoch's stream.

    A resumed run training under different values would silently diverge
    from the interrupted one, so these are validated like the structural
    fields.  ``epochs`` is deliberately absent (extending the schedule is
    the point of resuming) and so is ``seed`` — every generator's live
    state is restored from the manifest, which supersedes it.
    """
    cfg = trainer.config
    return {
        "lr": float(cfg.lr),
        "local_epochs": int(cfg.local_epochs),
        "clients_per_round": int(cfg.clients_per_round),
        "negative_ratio": int(cfg.negative_ratio),
    }


def pack_delta(delta, prefix: str, arrays: Dict[str, np.ndarray]) -> dict:
    """Serialise one sparse-or-dense block under ``prefix`` array keys.

    The single definition of the on-disk delta layout, shared by the
    straggler buffer, compression residuals and the unlearning ledger:
    a :class:`SparseRowDelta` keeps its sparse form (``{prefix}/rows`` +
    ``{prefix}/values``), anything else stores dense (``{prefix}/dense``).
    Returns the JSON record :func:`unpack_delta` needs back.
    """
    if isinstance(delta, SparseRowDelta):
        arrays[f"{prefix}/rows"] = delta.rows
        arrays[f"{prefix}/values"] = delta.values
        return {"sparse": True, "num_rows": int(delta.num_rows)}
    arrays[f"{prefix}/dense"] = np.asarray(delta)
    return {"sparse": False}


def unpack_delta(record: dict, prefix: str, archive):
    """Inverse of :func:`pack_delta`."""
    if record["sparse"]:
        return SparseRowDelta(
            int(record["num_rows"]),
            archive[f"{prefix}/rows"],
            archive[f"{prefix}/values"],
        )
    return archive[f"{prefix}/dense"]


def _pack_updates(
    prefix: str, updates: List[ClientUpdate], arrays: Dict[str, np.ndarray]
) -> List[dict]:
    """Serialise a list of updates into ``arrays`` + JSON entries.

    Sparse embedding deltas stay sparse (``rows``/``values`` pair); head
    deltas pack per parameter.  Scalar fields travel in the manifest.
    """
    entries: List[dict] = []
    for i, update in enumerate(updates):
        entry = {
            "user_id": int(update.user_id),
            "group": update.group,
            "num_examples": int(update.num_examples),
            "train_loss": float(update.train_loss),
            "upload_size_override": (
                None
                if update.upload_size_override is None
                else float(update.upload_size_override)
            ),
        }
        entry.update(pack_delta(update.embedding_delta, f"{prefix}/{i}", arrays))
        for head_group, state in update.head_deltas.items():
            for name, values in state.items():
                arrays[f"{prefix}/{i}/head/{head_group}/{name}"] = values
        entries.append(entry)
    return entries


def _unpack_updates(prefix: str, entries: List[dict], archive) -> List[ClientUpdate]:
    """Inverse of :func:`_pack_updates`."""
    head_keys: Dict[int, List[str]] = {}
    marker = f"{prefix}/"
    for key in archive.files:
        if key.startswith(marker):
            index_str, _, rest = key[len(marker):].partition("/")
            if rest.startswith("head/"):
                head_keys.setdefault(int(index_str), []).append(key)
    updates: List[ClientUpdate] = []
    for i, entry in enumerate(entries):
        delta = unpack_delta(entry, f"{prefix}/{i}", archive)
        heads: Dict[str, Dict[str, np.ndarray]] = {}
        head_marker = f"{prefix}/{i}/head/"
        for key in head_keys.get(i, ()):
            head_group, _, name = key[len(head_marker):].partition("/")
            heads.setdefault(head_group, {})[name] = archive[key]
        updates.append(
            ClientUpdate(
                user_id=int(entry["user_id"]),
                group=entry["group"],
                embedding_delta=delta,
                head_deltas=heads,
                num_examples=int(entry["num_examples"]),
                train_loss=float(entry["train_loss"]),
                upload_size_override=entry["upload_size_override"],
            )
        )
    return updates


def _pack_residuals(items, arrays: Dict[str, np.ndarray]) -> List[dict]:
    """Serialise compressor error-feedback residuals (sparse preserved)."""
    entries: List[dict] = []
    for i, (user_id, key, residual) in enumerate(items):
        entry = {"user_id": int(user_id), "key": key}
        entry.update(pack_delta(residual, f"residual/{i}", arrays))
        entries.append(entry)
    return entries


def _unpack_residuals(entries: List[dict], archive):
    return [
        (
            int(entry["user_id"]),
            entry["key"],
            unpack_delta(entry, f"residual/{i}", archive),
        )
        for i, entry in enumerate(entries)
    ]


def _collect(trainer) -> Tuple[Dict[str, np.ndarray], dict]:
    """Everything a resume needs, as ``(npz arrays, JSON manifest)``."""
    arrays = _flatten_states(trainer)
    config = trainer.config
    meta = {
        "format_version": FORMAT_VERSION,
        "method": trainer.method_name,
        "arch": config.arch,
        "dims": {group: int(dim) for group, dim in config.dims.items()},
        "hidden": [int(width) for width in config.hidden],
        "num_items": int(trainer.num_items),
        "dtype": config.dtype,
        "seed": config.seed,
        "group_of": {str(user): group for user, group in trainer.group_of.items()},
        "features": _feature_signature(trainer),
        "training": _training_signature(trainer),
        "data_digest": _data_digest(trainer),
        "progress": {
            "epochs_completed": int(trainer._epochs_done),
            "round_counter": int(trainer._round_counter),
        },
        "rng": {
            name: generator.bit_generator.state
            for name, generator in trainer._checkpoint_rngs().items()
        },
        "client_rng": {
            str(user_id): {
                "rng": runtime.rng.bit_generator.state,
                "sampler": runtime.sampler._rng.bit_generator.state,
            }
            for user_id, runtime in trainer.runtimes.items()
        },
        "meter": trainer.meter.export_state(),
        "history": trainer.history.export_records(),
    }
    if trainer._accountant is not None:
        meta["accounting"] = trainer._accountant.export_state()
    if trainer._server_opt is not None:
        momentum, second = trainer._server_opt.export_moments()
        for key, values in momentum.items():
            arrays[f"sopt/m/{key}"] = values
        for key, values in second.items():
            arrays[f"sopt/v/{key}"] = values
    if trainer._straggler_buffer is not None:
        meta["straggler"] = _pack_updates(
            "straggler", trainer._straggler_buffer.export_pending(), arrays
        )
        # Eviction clocks ride along so a resumed run expires buffered
        # updates on the same round the uninterrupted run would have.
        meta["straggler_ages"] = trainer._straggler_buffer.export_ages()
    if trainer._compressor is not None:
        meta["residuals"] = _pack_residuals(
            trainer._compressor.export_residuals(), arrays
        )
    extra_arrays, extra_meta = trainer._checkpoint_extra_state()
    arrays.update(extra_arrays)
    meta["extra"] = extra_meta
    return arrays, meta


# ----------------------------------------------------------------------
# Save / load
# ----------------------------------------------------------------------
def save_checkpoint(trainer, path: str) -> None:
    """Write a full-state checkpoint: ``path`` (.npz, manifest embedded)
    plus the ``path + '.meta.json'`` sidecar, both atomically."""
    arrays, meta = _collect(trainer)
    arrays["__manifest__"] = np.array(json.dumps(meta, sort_keys=True))

    def write_npz(fd: int) -> None:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)

    def write_meta(fd: int) -> None:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)

    _atomic_write(_npz_path(path), write_npz)
    _atomic_write(_meta_path(path), write_meta)


def _validate(trainer, meta: dict) -> None:
    """Raise :class:`CheckpointMismatchError` unless ``meta`` describes a
    run this trainer can continue."""
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointMismatchError(
            f"unsupported checkpoint format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    config = trainer.config
    problems: List[str] = []

    def check(name: str, want, got) -> None:
        if want != got:
            problems.append(f"{name}: trainer={want!r} vs checkpoint={got!r}")

    check("arch", config.arch, meta.get("arch"))
    check(
        "dims",
        {group: int(dim) for group, dim in config.dims.items()},
        meta.get("dims"),
    )
    check("hidden", [int(width) for width in config.hidden], meta.get("hidden"))
    check("num_items", int(trainer.num_items), meta.get("num_items"))
    check("dtype", config.dtype, meta.get("dtype"))
    check("features", _feature_signature(trainer), meta.get("features"))
    check("training", _training_signature(trainer), meta.get("training"))
    check("data split", _data_digest(trainer), meta.get("data_digest"))

    want_groups = {str(user): group for user, group in trainer.group_of.items()}
    got_groups = meta.get("group_of") or {}
    if want_groups != got_groups:
        missing = sorted(set(want_groups) - set(got_groups), key=int)
        extra = sorted(set(got_groups) - set(want_groups), key=int)
        moved = sorted(
            (
                user
                for user in set(want_groups) & set(got_groups)
                if want_groups[user] != got_groups[user]
            ),
            key=int,
        )
        problems.append(
            "group assignment: "
            f"users missing from checkpoint {missing[:5]}, "
            f"extra in checkpoint {extra[:5]}, reassigned {moved[:5]}"
        )
    if problems:
        raise CheckpointMismatchError(
            "checkpoint incompatible with trainer: " + "; ".join(problems)
        )


def load_checkpoint(trainer, path: str) -> None:
    """Restore a trainer to the checkpointed state, in place.

    The trainer must have been constructed with a compatible config (same
    arch/dims/hidden/catalogue/dtype, same feature set, same client→group
    assignment); anything else raises :class:`CheckpointMismatchError`
    rather than silently truncating.  After a successful load, calling
    :meth:`~repro.federated.trainer.FederatedTrainer.fit` continues the
    original run bitwise-identically.
    """
    with np.load(_npz_path(path)) as archive:
        if "__manifest__" in archive.files:
            meta = json.loads(archive["__manifest__"].item())
        else:
            with open(_meta_path(path), encoding="utf-8") as handle:
                meta = json.load(handle)
        _validate(trainer, meta)

        # Public parameters and private user embeddings.
        for group, model in trainer.models.items():
            state = {}
            prefix = f"model/{group}/"
            for key in archive.files:
                if key.startswith(prefix):
                    state[key[len(prefix):]] = archive[key]
            if not state:
                raise CheckpointMismatchError(
                    f"checkpoint has no parameters for group {group!r}"
                )
            model.load_state_dict(state)
        for user_id, runtime in trainer.runtimes.items():
            key = f"user/{user_id}"
            if key not in archive.files:
                raise CheckpointMismatchError(
                    f"checkpoint has no embedding for user {user_id}"
                )
            runtime.commit_user_embedding(archive[key])

        # Progress counters.
        progress = meta["progress"]
        trainer._epochs_done = int(progress["epochs_completed"])
        trainer._round_counter = int(progress["round_counter"])

        # Server-side and per-client RNG streams.
        saved_rngs = meta["rng"]
        for name, generator in trainer._checkpoint_rngs().items():
            if name not in saved_rngs:
                raise CheckpointMismatchError(
                    f"checkpoint carries no RNG state for stream {name!r}"
                )
            generator.bit_generator.state = saved_rngs[name]
        client_rng = meta["client_rng"]
        for user_id, runtime in trainer.runtimes.items():
            states = client_rng.get(str(user_id))
            if states is None:
                raise CheckpointMismatchError(
                    f"checkpoint carries no RNG state for client {user_id}"
                )
            runtime.rng.bit_generator.state = states["rng"]
            runtime.sampler._rng.bit_generator.state = states["sampler"]

        # Accounting and history.
        trainer.meter.load_state(meta["meter"])
        trainer.history.restore_records(meta["history"])
        if trainer._accountant is not None and "accounting" in meta:
            trainer._accountant.load_state(meta["accounting"])

        # Optional protocol components (presence already validated via
        # the feature signature).
        if trainer._server_opt is not None:
            momentum: Dict[str, np.ndarray] = {}
            second: Dict[str, np.ndarray] = {}
            for key in archive.files:
                if key.startswith("sopt/m/"):
                    momentum[key[len("sopt/m/"):]] = archive[key]
                elif key.startswith("sopt/v/"):
                    second[key[len("sopt/v/"):]] = archive[key]
            trainer._server_opt.load_moments(momentum, second)
        if trainer._straggler_buffer is not None:
            trainer._straggler_buffer.restore_pending(
                _unpack_updates("straggler", meta.get("straggler", []), archive),
                ages=meta.get("straggler_ages"),
            )
        if trainer._compressor is not None:
            trainer._compressor.restore_residuals(
                _unpack_residuals(meta.get("residuals", []), archive)
            )

        trainer._restore_checkpoint_extra_state(archive, meta.get("extra", {}))


# ----------------------------------------------------------------------
# Deploy-side loading
# ----------------------------------------------------------------------
def checkpoint_groups(path: str) -> List[str]:
    """The dim-group names a checkpoint carries models for, sorted."""
    return sorted(read_manifest(path)["dims"])


def load_inference_model(path: str, group: Optional[str] = None):
    """Rebuild one group's recommender from a checkpoint for serving.

    Returns ``(model, meta)``; score a user by passing their embedding
    (also in the checkpoint, under ``user/{id}``) to ``model.logits``.
    The model is rebuilt in the dtype it was trained in — the manifest
    records ``config.dtype``, so a float32 run deploys as float32.

    ``group`` may be omitted when the checkpoint carries exactly one
    group (the homogeneous baselines); with several groups, or with a
    name the manifest does not know, :class:`UnknownGroupError` names
    the valid choices instead of failing bare.
    """
    meta = read_manifest(path)
    groups = sorted(meta["dims"])
    if group is None:
        if len(groups) != 1:
            raise UnknownGroupError(
                f"checkpoint {path!r} holds models for groups {groups}; "
                "pass group=<name> to choose one"
            )
        group = groups[0]
    elif group not in meta["dims"]:
        raise UnknownGroupError(
            f"group {group!r} not in checkpoint {path!r} (valid groups: {groups})"
        )

    archive = np.load(_npz_path(path))
    model = build_model(
        meta["arch"],
        num_items=meta["num_items"],
        dim=meta["dims"][group],
        hidden=tuple(meta["hidden"]),
        rng=np.random.default_rng(meta["seed"]),
    )
    target = np.dtype(meta.get("dtype", "float64"))
    for param in model.parameters():
        param.data = param.data.astype(target)
    prefix = f"model/{group}/"
    state = {
        key[len(prefix):]: archive[key]
        for key in archive.files
        if key.startswith(prefix)
    }
    model.load_state_dict(state)
    return model, meta


def user_embedding_from_checkpoint(path: str, user_id: int) -> np.ndarray:
    """Fetch one user's private embedding from a checkpoint."""
    archive = np.load(_npz_path(path))
    key = f"user/{user_id}"
    if key not in archive.files:
        raise KeyError(f"no embedding stored for user {user_id}")
    return archive[key]


def load_user_embeddings(path: str) -> Dict[int, np.ndarray]:
    """Every user's private embedding from a checkpoint, keyed by id.

    The serving layer's warm-load: one archive pass instead of a
    :func:`user_embedding_from_checkpoint` round trip per user.
    """
    embeddings: Dict[int, np.ndarray] = {}
    with np.load(_npz_path(path)) as archive:
        for key in archive.files:
            if key.startswith("user/"):
                embeddings[int(key[len("user/"):])] = archive[key]
    return embeddings


# ----------------------------------------------------------------------
# Facade deprecation shims (PR 8)
# ----------------------------------------------------------------------
# The blessed import surface for the checkpoint verbs is ``repro.api``
# (``save_checkpoint`` / ``resume`` / ``load_model``).  The deep paths
# below keep working for one release but warn; the undecorated
# implementations stay importable under ``*_impl`` names for internal
# call sites (and for ``repro.api`` itself), which must not warn.
save_checkpoint_impl = save_checkpoint
load_checkpoint_impl = load_checkpoint
load_inference_model_impl = load_inference_model


def _deprecated_verb(impl, old: str, new: str):
    @functools.wraps(impl)
    def shim(*args, **kwargs):
        warnings.warn(
            f"importing {old} from repro.federated.checkpoint is deprecated "
            f"and will be removed one release after 1.1; use {new} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return impl(*args, **kwargs)

    return shim


save_checkpoint = _deprecated_verb(
    save_checkpoint_impl, "save_checkpoint", "repro.api.save_checkpoint"
)
load_checkpoint = _deprecated_verb(
    load_checkpoint_impl, "load_checkpoint", "repro.api.resume"
)
load_inference_model = _deprecated_verb(
    load_inference_model_impl, "load_inference_model", "repro.api.load_model"
)
