"""Benchmark: Table V — DDR prevents dimensional collapse.

Shape target (paper): on every dataset the singular-value variance of
cov(V_l) drops when DDR is enabled (reusing the Table IV runs).
"""

from benchmarks.conftest import SWEEP_ARCHS
from repro.experiments.table5 import format_table5, run_table5


def test_table5_singular_value_variance(benchmark, artifact):
    results = benchmark.pedantic(
        lambda: run_table5("bench", archs=SWEEP_ARCHS),
        rounds=1,
        iterations=1,
    )
    artifact("table5_collapse", format_table5(results))

    for arch, per_dataset in results.items():
        for dataset, variants in per_dataset.items():
            assert variants["+ DDR"] < variants["- DDR"], (arch, dataset)
            # The reduction is substantial, not marginal (paper: 3–10×).
            assert variants["+ DDR"] < 0.7 * variants["- DDR"], (arch, dataset)
