"""The evaluator: turns a scoring function into Table II-style numbers.

The federated trainers expose ``score_all_items(client) -> scores``; the
evaluator runs the full-ranking protocol over every client and averages
Recall@20 / NDCG@20, overall and (via :mod:`repro.eval.groups`) per client
group for Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.data.dataset import ClientData
from repro.eval.metrics import (
    blocked_top_k,
    mask_scored_items,
    ndcg_at_k,
    rank_items,
    recall_at_k,
)

ScoreFn = Callable[[ClientData], np.ndarray]
#: Batched scoring hook: a block of clients → a (B, num_items) score matrix.
ScoreBlockFn = Callable[[Sequence[ClientData]], np.ndarray]


@dataclass
class EvaluationResult:
    """Aggregated metrics plus the per-user values they were averaged from."""

    recall: float
    ndcg: float
    k: int
    per_user_recall: np.ndarray
    per_user_ndcg: np.ndarray
    evaluated_users: np.ndarray

    def __str__(self) -> str:
        return f"Recall@{self.k}={self.recall:.5f} NDCG@{self.k}={self.ndcg:.5f}"


class Evaluator:
    """Full-ranking evaluation over a fixed client split.

    Parameters
    ----------
    clients:
        Per-user splits; users with empty test sets are skipped (their
        metrics are undefined), matching common practice.
    k:
        Cut-off for Recall@K / NDCG@K (paper: 20).
    """

    def __init__(self, clients: Sequence[ClientData], k: int = 20) -> None:
        self.clients = list(clients)
        self.k = k

    def evaluate(
        self,
        score_fn: ScoreFn,
        user_subset: Optional[Sequence[int]] = None,
    ) -> EvaluationResult:
        """Evaluate ``score_fn`` over all (or a subset of) users."""
        subset = (
            set(int(u) for u in user_subset) if user_subset is not None else None
        )
        recalls: List[float] = []
        ndcgs: List[float] = []
        users: List[int] = []
        for client in self.clients:
            if subset is not None and client.user_id not in subset:
                continue
            if client.test_items.size == 0:
                continue
            scores = score_fn(client)
            ranked = rank_items(scores, exclude=client.known_items(), k=self.k)
            recalls.append(recall_at_k(ranked, client.test_items, k=self.k))
            ndcgs.append(ndcg_at_k(ranked, client.test_items, k=self.k))
            users.append(client.user_id)

        if not recalls:
            empty = np.empty(0)
            return EvaluationResult(0.0, 0.0, self.k, empty, empty, np.empty(0, dtype=int))
        return EvaluationResult(
            recall=float(np.mean(recalls)),
            ndcg=float(np.mean(ndcgs)),
            k=self.k,
            per_user_recall=np.asarray(recalls),
            per_user_ndcg=np.asarray(ndcgs),
            evaluated_users=np.asarray(users, dtype=int),
        )

    # ------------------------------------------------------------------
    # Blocked fast path
    # ------------------------------------------------------------------
    def evaluate_blocked(
        self,
        score_block_fn: ScoreBlockFn,
        user_subset: Optional[Sequence[int]] = None,
        block_size: int = 256,
    ) -> EvaluationResult:
        """Full-ranking evaluation over blocks of users at once.

        ``score_block_fn`` maps a list of clients to one (B, num_items)
        score matrix (e.g. :meth:`FederatedTrainer.score_item_matrix`);
        exclusion masking, top-k extraction and both metrics then run as
        block-level array operations.  Produces the same numbers as
        :meth:`evaluate` driven by the per-client scoring hook, up to
        floating-point summation order.
        """
        subset = (
            set(int(u) for u in user_subset) if user_subset is not None else None
        )
        eligible = [
            client
            for client in self.clients
            if (subset is None or client.user_id in subset)
            and client.test_items.size > 0
        ]
        if not eligible:
            empty = np.empty(0)
            return EvaluationResult(0.0, 0.0, self.k, empty, empty, np.empty(0, dtype=int))

        discounts = 1.0 / np.log2(np.arange(self.k) + 2.0)
        ideal_cum = np.cumsum(discounts)
        recalls: List[np.ndarray] = []
        ndcgs: List[np.ndarray] = []
        for start in range(0, len(eligible), max(block_size, 1)):
            block = eligible[start : start + max(block_size, 1)]
            scores = np.array(score_block_fn(block), dtype=np.float64, copy=True)
            if scores.shape[0] != len(block):
                raise ValueError(
                    f"score block has {scores.shape[0]} rows for {len(block)} clients"
                )
            block_recall, block_ndcg = self._block_metrics(
                block, scores, discounts, ideal_cum
            )
            recalls.append(block_recall)
            ndcgs.append(block_ndcg)

        per_user_recall = np.concatenate(recalls)
        per_user_ndcg = np.concatenate(ndcgs)
        return EvaluationResult(
            recall=float(np.mean(per_user_recall)),
            ndcg=float(np.mean(per_user_ndcg)),
            k=self.k,
            per_user_recall=per_user_recall,
            per_user_ndcg=per_user_ndcg,
            evaluated_users=np.asarray([c.user_id for c in eligible], dtype=int),
        )

    def _block_metrics(
        self,
        block: Sequence[ClientData],
        scores: np.ndarray,
        discounts: np.ndarray,
        ideal_cum: np.ndarray,
    ) -> tuple:
        """Recall@k / NDCG@k for one scored block, fully vectorized."""
        # Vectorized exclusion masking: one fancy assignment for the block.
        mask_scored_items(scores, [c.known_items() for c in block])

        top = blocked_top_k(scores, self.k)

        # Membership is only ever probed at the (B, k) top indices, so an
        # isin per row beats scattering a dense (B, num_items) indicator.
        test_lengths = np.array([np.unique(c.test_items).size for c in block])
        hits = np.zeros(top.shape, dtype=bool)
        for row, client in enumerate(block):
            hits[row] = np.isin(top[row], client.test_items)

        recall = hits.sum(axis=1) / test_lengths
        dcg = (hits * discounts[: top.shape[1]]).sum(axis=1)
        idcg = ideal_cum[np.minimum(test_lengths, self.k) - 1]
        return recall, dcg / idcg
